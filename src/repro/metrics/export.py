"""Export run results for downstream analysis.

Benchmark harnesses and notebooks want the per-iteration series as
flat files; these helpers serialize a :class:`RunResult` to JSON (full
fidelity minus the big arrays) and its iteration records to CSV.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.metrics.results import IterationRecord, RunResult

_RECORD_FIELDS = [f.name for f in dataclasses.fields(IterationRecord)]


def result_to_dict(
    result: RunResult, *, include_assignment: bool = False
) -> dict:
    """JSON-safe dictionary of a run's outputs and records.

    Centroids are always included (small); the assignment vector only
    on request (it is O(n)).
    """
    out = {
        "algorithm": result.algorithm,
        "iterations": result.iterations,
        "converged": result.converged,
        "inertia": result.inertia,
        "sim_seconds": result.sim_seconds,
        "sim_seconds_per_iter": result.sim_seconds_per_iter,
        "peak_memory_bytes": result.peak_memory_bytes,
        "memory_breakdown": dict(result.memory_breakdown),
        "params": _jsonable(result.params),
        "centroids": result.centroids.tolist(),
        "cluster_sizes": result.cluster_sizes.tolist(),
        "records": [
            {f: getattr(r, f) for f in _RECORD_FIELDS}
            for r in result.records
        ],
    }
    if include_assignment:
        out["assignment"] = result.assignment.tolist()
    return out


def _jsonable(value):
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Path):
        return str(value)
    return value


def write_json(
    path: str | Path, result: RunResult, *,
    include_assignment: bool = False,
) -> Path:
    """Serialize a run to JSON at ``path``."""
    path = Path(path)
    path.write_text(
        json.dumps(
            result_to_dict(
                result, include_assignment=include_assignment
            ),
            indent=2,
        )
    )
    return path


def write_records_csv(path: str | Path, result: RunResult) -> Path:
    """Write the per-iteration records as CSV at ``path``."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_RECORD_FIELDS)
        writer.writeheader()
        for rec in result.records:
            writer.writerow(
                {f: getattr(rec, f) for f in _RECORD_FIELDS}
            )
    return path


def read_records_csv(path: str | Path) -> list[IterationRecord]:
    """Round-trip loader for :func:`write_records_csv` output."""
    path = Path(path)
    records = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != _RECORD_FIELDS:
            raise ConfigError(
                f"{path}: unexpected CSV header {reader.fieldnames}"
            )
        for row in reader:
            kwargs = {}
            for field in dataclasses.fields(IterationRecord):
                raw = row[field.name]
                kwargs[field.name] = (
                    float(raw) if field.type == "float" else int(raw)
                )
            records.append(IterationRecord(**kwargs))
    return records
