"""Wall-clock measurement utilities for the benchmark harness.

The simulated-hardware layer charges *simulated* nanoseconds; this
package measures the *real* interpreter-side wall clock so the repo can
track a performance trajectory across PRs (``BENCH_kernels.json``).

:func:`time_callable` is deliberately minimal: warm up, run ``repeats``
timed passes, report best/mean/all. Best-of is the standard estimator
for CPU-bound microbenchmarks (the minimum is the least contaminated by
scheduler noise); the mean is kept alongside for sanity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Timing:
    """One measured callable: best-of-N wall-clock seconds."""

    label: str
    best_s: float
    mean_s: float
    repeats: int
    samples_s: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "repeats": self.repeats,
            "samples_s": self.samples_s,
        }


def time_callable(
    fn: Callable[[], Any],
    *,
    label: str = "",
    repeats: int = 5,
    warmup: int = 1,
) -> Timing:
    """Best-of-``repeats`` wall-clock timing of ``fn()``.

    ``warmup`` untimed passes run first so one-time costs (lazy buffer
    growth, BLAS thread pools, page faults on fresh arrays) do not
    pollute the samples.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return Timing(
        label=label,
        best_s=min(samples),
        mean_s=sum(samples) / len(samples),
        repeats=repeats,
        samples_s=samples,
    )


def before_after(
    before: Timing, after: Timing
) -> dict[str, Any]:
    """The JSON fragment ``BENCH_kernels.json`` records per benchmark."""
    return {
        "before_s": before.best_s,
        "after_s": after.best_s,
        "before_mean_s": before.mean_s,
        "after_mean_s": after.mean_s,
        "speedup": (
            before.best_s / after.best_s if after.best_s > 0 else float("inf")
        ),
        "repeats": after.repeats,
    }


__all__ = ["Timing", "time_callable", "before_after"]
