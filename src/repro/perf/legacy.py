"""Frozen pre-optimization kernels: the "before" side of the perf pass.

These are verbatim copies of the interpreter-side hot paths as they
stood before the workspace/flat-accumulation rework (PR 3). They exist
for two reasons:

* **Golden-value conformance** -- the equivalence suite
  (``tests/test_perf_equivalence.py``) asserts the optimized kernels
  produce ``np.array_equal`` (bit-identical, not merely allclose)
  outputs against these references across seeds, dtypes and ragged
  block boundaries.
* **Before/after wall-clock** -- ``benchmarks/bench_wallclock.py``
  times each legacy kernel against its optimized replacement and
  records the trajectory in ``BENCH_kernels.json``.

Nothing in the library proper may import from this module; it is a
measurement fixture, not an implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.mti import MtiIterationResult, MtiState
from repro.errors import DatasetError

#: Block size of the pre-change ``nearest_centroid`` (unchanged since).
BLOCK_ROWS = 65536


def _as_matrix(a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise DatasetError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def euclidean(x: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Pre-change pairwise distances: norms re-derived on every call."""
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    if x.shape[1] != c.shape[1]:
        raise DatasetError(
            f"dimension mismatch: x has d={x.shape[1]}, c has d={c.shape[1]}"
        )
    x_sq = np.einsum("ij,ij->i", x, x)
    c_sq = np.einsum("ij,ij->i", c, c)
    sq = x_sq[:, None] - 2.0 * (x @ c.T) + c_sq[None, :]
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_centroid_distances(c: np.ndarray) -> np.ndarray:
    return euclidean(c, c)


def half_min_inter_centroid(cc: np.ndarray) -> np.ndarray:
    """Pre-change clause-1 threshold: fresh k x k eye/where per call."""
    k = cc.shape[0]
    if k == 1:
        return np.array([np.inf])
    masked = cc + np.where(np.eye(k, dtype=bool), np.inf, 0.0)
    return 0.5 * masked.min(axis=1)


def nearest_centroid(
    x: np.ndarray, c: np.ndarray, *, block_rows: int = BLOCK_ROWS
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-change Phase I: per-block temporaries reallocated every block."""
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    n = x.shape[0]
    assign = np.empty(n, dtype=np.int32)
    mindist = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        dist = euclidean(x[start:stop], c)
        assign[start:stop] = np.argmin(dist, axis=1)
        mindist[start:stop] = dist[
            np.arange(stop - start), assign[start:stop]
        ]
    return assign, mindist


def rows_to_centroids(
    x: np.ndarray, c: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """Pre-change own-centroid distances: centroid norms re-gathered."""
    x = _as_matrix(x, "x")
    sel = c[idx]
    sq = (
        np.einsum("ij,ij->i", x, x)
        - 2.0 * np.einsum("ij,ij->i", x, sel)
        + np.einsum("ij,ij->i", sel, sel)
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def add_block(
    sums: np.ndarray,
    counts: np.ndarray,
    x: np.ndarray,
    assign: np.ndarray,
) -> None:
    """Pre-change accumulation: one strided ``bincount`` per dimension."""
    k, d = sums.shape
    if x.shape[0] != assign.shape[0]:
        raise DatasetError("x and assign length mismatch")
    counts += np.bincount(assign, minlength=k).astype(np.int64)
    for dim in range(d):
        sums[:, dim] += np.bincount(assign, weights=x[:, dim], minlength=k)


def move_rows(
    sums: np.ndarray,
    counts: np.ndarray,
    x: np.ndarray,
    frm: np.ndarray,
    to: np.ndarray,
) -> None:
    """Pre-change incremental update: the hand-rolled per-dim loop that
    was duplicated inside ``mti_iteration`` and ``elkan_iteration``."""
    k = sums.shape[0]
    for dim in range(x.shape[1]):
        sums[:, dim] -= np.bincount(frm, weights=x[:, dim], minlength=k)
        sums[:, dim] += np.bincount(to, weights=x[:, dim], minlength=k)
    counts -= np.bincount(frm, minlength=k)
    counts += np.bincount(to, minlength=k)


def mti_init(
    x: np.ndarray, centroids: np.ndarray
) -> tuple[MtiState, MtiIterationResult]:
    """Pre-change MTI iteration 0 (per-dim bincount seeding)."""
    x = np.asarray(x, dtype=np.float64)
    k, d = centroids.shape
    n = x.shape[0]
    assign, mindist = nearest_centroid(x, centroids)
    sums = np.zeros((k, d))
    for dim in range(d):
        sums[:, dim] = np.bincount(assign, weights=x[:, dim], minlength=k)
    counts = np.bincount(assign, minlength=k).astype(np.int64)
    state = MtiState(
        assignment=assign, ub=mindist.copy(), sums=sums, counts=counts
    )
    new_centroids = centroids.copy()
    nonzero = counts > 0
    new_centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
    result = MtiIterationResult(
        new_centroids=new_centroids,
        n_changed=n,
        dist_per_row=np.full(n, k, dtype=np.int32),
        needs_data=np.ones(n, dtype=bool),
        motion=np.zeros(k),
        tightened_rows=0,
        computed=n * k,
    )
    return state, result


def mti_iteration(
    x: np.ndarray,
    centroids: np.ndarray,
    prev_centroids: np.ndarray,
    state: MtiState,
) -> MtiIterationResult:
    """Pre-change MTI super-phase, byte-for-byte the old hot loop."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    k = centroids.shape[0]
    if state.n != n:
        raise DatasetError(
            f"state tracks {state.n} rows but data has {n}"
        )

    motion = rows_to_centroids(centroids, prev_centroids, np.arange(k))
    state.ub += motion[state.assignment]

    cc = pairwise_centroid_distances(centroids)
    s = half_min_inter_centroid(cc)

    assign = state.assignment
    old_assign = assign.copy()

    clause1 = state.ub <= s[assign]
    active_idx = np.nonzero(~clause1)[0]

    dist_per_row = np.zeros(n, dtype=np.int32)
    needs_data = np.zeros(n, dtype=bool)
    needs_data[active_idx] = True

    clause2_pruned = 0
    clause3_pruned = 0
    computed = 0
    n_tightened = 0

    if active_idx.size:
        xa = x[active_idx]
        ba = assign[active_idx]
        ua = state.ub[active_idx]
        half_cc = 0.5 * cc[ba]
        other = np.ones((active_idx.size, k), dtype=bool)
        other[np.arange(active_idx.size), ba] = False

        loose_candidate = other & (ua[:, None] > half_cc)
        clause2_pruned = int(other.sum() - loose_candidate.sum())

        tighten_mask = loose_candidate.any(axis=1)
        t_idx = np.nonzero(tighten_mask)[0]
        n_tightened = int(t_idx.size)
        if t_idx.size:
            xt = xa[t_idx]
            bt = ba[t_idx]
            ut = rows_to_centroids(xt, centroids, bt)
            computed += int(t_idx.size)

            tight_candidate = loose_candidate[t_idx] & (
                ut[:, None] > half_cc[t_idx]
            )
            clause3_pruned = int(
                loose_candidate[t_idx].sum() - tight_candidate.sum()
            )

            row_has_cand = tight_candidate.any(axis=1)
            c_idx = np.nonzero(row_has_cand)[0]
            new_ub_t = ut.copy()
            new_assign_t = bt.copy()
            if c_idx.size:
                dist = euclidean(xt[c_idx], centroids)
                cand = tight_candidate[c_idx]
                computed += int(cand.sum())
                masked = np.where(cand, dist, np.inf)
                masked[np.arange(c_idx.size), bt[c_idx]] = ut[c_idx]
                best = np.argmin(masked, axis=1).astype(np.int32)
                bestdist = masked[np.arange(c_idx.size), best]
                new_assign_t[c_idx] = best
                new_ub_t[c_idx] = bestdist

            ga = active_idx[t_idx]
            state.ub[ga] = new_ub_t
            assign[ga] = new_assign_t

            dist_per_row[ga] = 1 + tight_candidate.sum(axis=1).astype(
                np.int32
            )

    changed = np.nonzero(assign != old_assign)[0]
    n_changed = int(changed.size)
    if n_changed:
        xc = x[changed]
        frm = old_assign[changed]
        to = assign[changed]
        for dim in range(x.shape[1]):
            state.sums[:, dim] -= np.bincount(
                frm, weights=xc[:, dim], minlength=k
            )
            state.sums[:, dim] += np.bincount(
                to, weights=xc[:, dim], minlength=k
            )
        state.counts -= np.bincount(frm, minlength=k)
        state.counts += np.bincount(to, minlength=k)

    new_centroids = centroids.copy()
    nonzero = state.counts > 0
    new_centroids[nonzero] = (
        state.sums[nonzero] / state.counts[nonzero, None]
    )

    return MtiIterationResult(
        new_centroids=new_centroids,
        n_changed=n_changed,
        dist_per_row=dist_per_row,
        needs_data=needs_data,
        motion=motion,
        clause1_rows=int(clause1.sum()),
        clause2_pruned=clause2_pruned,
        clause3_pruned=clause3_pruned,
        tightened_rows=n_tightened,
        computed=computed,
    )
