"""Frozen pre-optimization kernels: the "before" side of the perf pass.

These are verbatim copies of the interpreter-side hot paths as they
stood before the workspace/flat-accumulation rework (PR 3). They exist
for two reasons:

* **Golden-value conformance** -- the equivalence suite
  (``tests/test_perf_equivalence.py``) asserts the optimized kernels
  produce ``np.array_equal`` (bit-identical, not merely allclose)
  outputs against these references across seeds, dtypes and ragged
  block boundaries.
* **Before/after wall-clock** -- ``benchmarks/bench_wallclock.py``
  times each legacy kernel against its optimized replacement and
  records the trajectory in ``BENCH_kernels.json``.

Nothing in the library proper may import from this module; it is a
measurement fixture, not an implementation.
"""

from __future__ import annotations

import numpy as np

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.core.mti import MtiIterationResult, MtiState
from repro.errors import DatasetError, IoSubsystemError, RetryExhaustedError
from repro.simhw.ssd import SsdArray, SsdReadResult

#: Block size of the pre-change ``nearest_centroid`` (unchanged since).
BLOCK_ROWS = 65536


def _as_matrix(a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise DatasetError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def euclidean(x: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Pre-change pairwise distances: norms re-derived on every call."""
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    if x.shape[1] != c.shape[1]:
        raise DatasetError(
            f"dimension mismatch: x has d={x.shape[1]}, c has d={c.shape[1]}"
        )
    x_sq = np.einsum("ij,ij->i", x, x)
    c_sq = np.einsum("ij,ij->i", c, c)
    sq = x_sq[:, None] - 2.0 * (x @ c.T) + c_sq[None, :]
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_centroid_distances(c: np.ndarray) -> np.ndarray:
    return euclidean(c, c)


def half_min_inter_centroid(cc: np.ndarray) -> np.ndarray:
    """Pre-change clause-1 threshold: fresh k x k eye/where per call."""
    k = cc.shape[0]
    if k == 1:
        return np.array([np.inf])
    masked = cc + np.where(np.eye(k, dtype=bool), np.inf, 0.0)
    return 0.5 * masked.min(axis=1)


def nearest_centroid(
    x: np.ndarray, c: np.ndarray, *, block_rows: int = BLOCK_ROWS
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-change Phase I: per-block temporaries reallocated every block."""
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    n = x.shape[0]
    assign = np.empty(n, dtype=np.int32)
    mindist = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        dist = euclidean(x[start:stop], c)
        assign[start:stop] = np.argmin(dist, axis=1)
        mindist[start:stop] = dist[
            np.arange(stop - start), assign[start:stop]
        ]
    return assign, mindist


def rows_to_centroids(
    x: np.ndarray, c: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """Pre-change own-centroid distances: centroid norms re-gathered."""
    x = _as_matrix(x, "x")
    sel = c[idx]
    sq = (
        np.einsum("ij,ij->i", x, x)
        - 2.0 * np.einsum("ij,ij->i", x, sel)
        + np.einsum("ij,ij->i", sel, sel)
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def add_block(
    sums: np.ndarray,
    counts: np.ndarray,
    x: np.ndarray,
    assign: np.ndarray,
) -> None:
    """Pre-change accumulation: one strided ``bincount`` per dimension."""
    k, d = sums.shape
    if x.shape[0] != assign.shape[0]:
        raise DatasetError("x and assign length mismatch")
    counts += np.bincount(assign, minlength=k).astype(np.int64)
    for dim in range(d):
        sums[:, dim] += np.bincount(assign, weights=x[:, dim], minlength=k)


def move_rows(
    sums: np.ndarray,
    counts: np.ndarray,
    x: np.ndarray,
    frm: np.ndarray,
    to: np.ndarray,
) -> None:
    """Pre-change incremental update: the hand-rolled per-dim loop that
    was duplicated inside ``mti_iteration`` and ``elkan_iteration``."""
    k = sums.shape[0]
    for dim in range(x.shape[1]):
        sums[:, dim] -= np.bincount(frm, weights=x[:, dim], minlength=k)
        sums[:, dim] += np.bincount(to, weights=x[:, dim], minlength=k)
    counts -= np.bincount(frm, minlength=k)
    counts += np.bincount(to, minlength=k)


def minibatch_update(
    centroids: np.ndarray,
    counts: np.ndarray,
    batch: np.ndarray,
    assign: np.ndarray,
) -> None:
    """Pre-change Sculley mini-batch update: a Python loop over every
    batch row, grouped per center via ``np.unique`` boolean masks."""
    for c in np.unique(assign):
        members = batch[assign == c]
        for row in members:
            counts[c] += 1
            eta = 1.0 / counts[c]
            centroids[c] = (1.0 - eta) * centroids[c] + eta * row


def mti_init(
    x: np.ndarray, centroids: np.ndarray
) -> tuple[MtiState, MtiIterationResult]:
    """Pre-change MTI iteration 0 (per-dim bincount seeding)."""
    x = np.asarray(x, dtype=np.float64)
    k, d = centroids.shape
    n = x.shape[0]
    assign, mindist = nearest_centroid(x, centroids)
    sums = np.zeros((k, d))
    for dim in range(d):
        sums[:, dim] = np.bincount(assign, weights=x[:, dim], minlength=k)
    counts = np.bincount(assign, minlength=k).astype(np.int64)
    state = MtiState(
        assignment=assign, ub=mindist.copy(), sums=sums, counts=counts
    )
    new_centroids = centroids.copy()
    nonzero = counts > 0
    new_centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
    result = MtiIterationResult(
        new_centroids=new_centroids,
        n_changed=n,
        dist_per_row=np.full(n, k, dtype=np.int32),
        needs_data=np.ones(n, dtype=bool),
        motion=np.zeros(k),
        tightened_rows=0,
        computed=n * k,
    )
    return state, result


def mti_iteration(
    x: np.ndarray,
    centroids: np.ndarray,
    prev_centroids: np.ndarray,
    state: MtiState,
) -> MtiIterationResult:
    """Pre-change MTI super-phase, byte-for-byte the old hot loop."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    k = centroids.shape[0]
    if state.n != n:
        raise DatasetError(
            f"state tracks {state.n} rows but data has {n}"
        )

    motion = rows_to_centroids(centroids, prev_centroids, np.arange(k))
    state.ub += motion[state.assignment]

    cc = pairwise_centroid_distances(centroids)
    s = half_min_inter_centroid(cc)

    assign = state.assignment
    old_assign = assign.copy()

    clause1 = state.ub <= s[assign]
    active_idx = np.nonzero(~clause1)[0]

    dist_per_row = np.zeros(n, dtype=np.int32)
    needs_data = np.zeros(n, dtype=bool)
    needs_data[active_idx] = True

    clause2_pruned = 0
    clause3_pruned = 0
    computed = 0
    n_tightened = 0

    if active_idx.size:
        xa = x[active_idx]
        ba = assign[active_idx]
        ua = state.ub[active_idx]
        half_cc = 0.5 * cc[ba]
        other = np.ones((active_idx.size, k), dtype=bool)
        other[np.arange(active_idx.size), ba] = False

        loose_candidate = other & (ua[:, None] > half_cc)
        clause2_pruned = int(other.sum() - loose_candidate.sum())

        tighten_mask = loose_candidate.any(axis=1)
        t_idx = np.nonzero(tighten_mask)[0]
        n_tightened = int(t_idx.size)
        if t_idx.size:
            xt = xa[t_idx]
            bt = ba[t_idx]
            ut = rows_to_centroids(xt, centroids, bt)
            computed += int(t_idx.size)

            tight_candidate = loose_candidate[t_idx] & (
                ut[:, None] > half_cc[t_idx]
            )
            clause3_pruned = int(
                loose_candidate[t_idx].sum() - tight_candidate.sum()
            )

            row_has_cand = tight_candidate.any(axis=1)
            c_idx = np.nonzero(row_has_cand)[0]
            new_ub_t = ut.copy()
            new_assign_t = bt.copy()
            if c_idx.size:
                dist = euclidean(xt[c_idx], centroids)
                cand = tight_candidate[c_idx]
                computed += int(cand.sum())
                masked = np.where(cand, dist, np.inf)
                masked[np.arange(c_idx.size), bt[c_idx]] = ut[c_idx]
                best = np.argmin(masked, axis=1).astype(np.int32)
                bestdist = masked[np.arange(c_idx.size), best]
                new_assign_t[c_idx] = best
                new_ub_t[c_idx] = bestdist

            ga = active_idx[t_idx]
            state.ub[ga] = new_ub_t
            assign[ga] = new_assign_t

            dist_per_row[ga] = 1 + tight_candidate.sum(axis=1).astype(
                np.int32
            )

    changed = np.nonzero(assign != old_assign)[0]
    n_changed = int(changed.size)
    if n_changed:
        xc = x[changed]
        frm = old_assign[changed]
        to = assign[changed]
        for dim in range(x.shape[1]):
            state.sums[:, dim] -= np.bincount(
                frm, weights=xc[:, dim], minlength=k
            )
            state.sums[:, dim] += np.bincount(
                to, weights=xc[:, dim], minlength=k
            )
        state.counts -= np.bincount(frm, minlength=k)
        state.counts += np.bincount(to, minlength=k)

    new_centroids = centroids.copy()
    nonzero = state.counts > 0
    new_centroids[nonzero] = (
        state.sums[nonzero] / state.counts[nonzero, None]
    )

    return MtiIterationResult(
        new_centroids=new_centroids,
        n_changed=n_changed,
        dist_per_row=dist_per_row,
        needs_data=needs_data,
        motion=motion,
        clause1_rows=int(clause1.sum()),
        clause2_pruned=clause2_pruned,
        clause3_pruned=clause3_pruned,
        tightened_rows=n_tightened,
        computed=computed,
    )


# ---------------------------------------------------------------------------
# SEM cache hierarchy, frozen before the batch-LRU / vectorized-SAFS rework
# (PR 4). Verbatim copies of repro.sem.{pagecache,safs,rowcache} as they
# stood; the equivalence suite (tests/test_sem_perf_equivalence.py) drives
# the same request streams through both and asserts identical hit/miss
# tallies, eviction order and IoBatch counters.
# ---------------------------------------------------------------------------


class LegacyPageCache:
    """Pre-change LRU page cache: one OrderedDict op per page probe."""

    def __init__(self, capacity_bytes: int, page_bytes: int) -> None:
        if page_bytes <= 0:
            raise IoSubsystemError(f"page_bytes must be > 0, got {page_bytes}")
        if capacity_bytes < 0:
            raise IoSubsystemError("capacity_bytes must be >= 0")
        self.page_bytes = page_bytes
        self.capacity_pages = capacity_bytes // page_bytes
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_bytes

    def lookup(self, page: int) -> bool:
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, page: int) -> None:
        if self.capacity_pages == 0:
            return
        if page in self._pages:
            self._pages.move_to_end(page)
            return
        while len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
        self._pages[page] = None

    def clear(self) -> None:
        self._pages.clear()

    def contains(self, page: int) -> bool:
        return page in self._pages

    def pages_lru_order(self) -> list[int]:
        """Resident pages, least-recently-used first (for conformance)."""
        return list(self._pages.keys())


@dataclass
class LegacyIoBatch:
    """Pre-change IoBatch (field-for-field the old dataclass)."""

    rows_requested: int
    bytes_requested: int
    pages_needed: int
    page_cache_hits: int
    pages_from_ssd: int
    merged_requests: int
    bytes_read: int
    service_ns: float
    io_retries: int = 0
    fault_delay_ns: float = 0.0


class LegacySafs:
    """Pre-change SAFS front end: per-page list-comprehension fetch path,
    matrix-expansion ``pages_of_rows`` and re-sorting ``merge_requests``."""

    def __init__(
        self,
        ssd: SsdArray,
        *,
        page_cache_bytes: int,
        data_offset: int = 0,
        faults: Any = None,
        retry_policy: Any = None,
    ) -> None:
        self.ssd = ssd
        self.page_bytes = ssd.page_bytes
        self.page_cache = LegacyPageCache(page_cache_bytes, self.page_bytes)
        self.data_offset = data_offset
        self.faults = faults
        if retry_policy is None and faults is not None:
            from repro.faults import DEFAULT_RETRY_POLICY

            retry_policy = DEFAULT_RETRY_POLICY
        self.retry_policy = retry_policy

    def pages_of_rows(
        self, rows: np.ndarray, row_bytes: int
    ) -> np.ndarray:
        if row_bytes <= 0:
            raise IoSubsystemError(f"row_bytes must be > 0, got {row_bytes}")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.data_offset + rows * row_bytes
        ends = starts + row_bytes - 1
        first = starts // self.page_bytes
        last = ends // self.page_bytes
        max_span = int((last - first).max()) + 1
        pages = first[:, None] + np.arange(max_span)[None, :]
        mask = pages <= last[:, None]
        return np.unique(pages[mask])

    @staticmethod
    def merge_requests(pages: np.ndarray) -> int:
        if pages.size == 0:
            return 0
        pages = np.sort(np.asarray(pages, dtype=np.int64))
        breaks = np.count_nonzero(np.diff(pages) > 1)
        return int(breaks) + 1

    def fetch_rows(
        self,
        rows: np.ndarray,
        row_bytes: int,
        *,
        iteration: int = 0,
        observer: Any = None,
    ) -> LegacyIoBatch:
        rows = np.asarray(rows, dtype=np.int64)
        bytes_requested = int(rows.size) * row_bytes
        pages = self.pages_of_rows(rows, row_bytes)
        miss_pages = [p for p in pages.tolist() if not self.page_cache.lookup(p)]
        hits = int(pages.size) - len(miss_pages)
        miss_arr = np.asarray(miss_pages, dtype=np.int64)
        n_requests = self.merge_requests(miss_arr)
        result = self.ssd.read(n_requests, len(miss_pages))
        if self.faults is not None and result.pages_read > 0:
            result = self._apply_faults(result, iteration, observer)
        for p in miss_pages:
            self.page_cache.admit(p)
        return LegacyIoBatch(
            rows_requested=int(rows.size),
            bytes_requested=bytes_requested,
            pages_needed=int(pages.size),
            page_cache_hits=hits,
            pages_from_ssd=len(miss_pages),
            merged_requests=n_requests,
            bytes_read=result.bytes_read,
            service_ns=result.service_ns,
            io_retries=result.retries,
            fault_delay_ns=result.fault_delay_ns,
        )

    def _apply_faults(
        self, result: SsdReadResult, iteration: int, observer: Any
    ) -> SsdReadResult:
        kind = self.faults.ssd_fault(iteration)
        if kind is None:
            return result
        if observer is None:
            from repro.runtime.observer import RunObserver

            observer = RunObserver()
        if kind == "slow":
            extra = result.service_ns * (
                self.faults.spec.ssd_slow_factor - 1.0
            )
            observer.on_fault(
                iteration, "ssd", "slow",
                {"factor": self.faults.spec.ssd_slow_factor},
            )
            observer.on_recovery(
                iteration, "ssd", "absorbed", {"extra_ns": extra}
            )
            return result.delayed(extra, 0)
        policy = self.retry_policy
        observer.on_fault(
            iteration, "ssd", "read_error",
            {"requests": result.n_requests, "pages": result.pages_read},
        )
        delay = 0.0
        attempt = 0
        while True:
            attempt += 1
            if attempt > policy.max_retries:
                raise RetryExhaustedError(
                    f"SSD batch failed {policy.max_retries} retries "
                    f"at iteration {iteration}"
                )
            backoff = policy.backoff(attempt)
            delay += backoff + result.service_ns
            observer.on_retry(iteration, "ssd", attempt, backoff)
            if not self.faults.ssd_retry_fails(iteration):
                break
            observer.on_fault(
                iteration, "ssd", "read_error", {"attempt": attempt}
            )
        observer.on_recovery(
            iteration, "ssd", "retried", {"attempts": attempt}
        )
        return result.delayed(delay, attempt)


class LegacyRowCache:
    """Pre-change row cache: Python loop over partitions in ``refresh``,
    floor-divided per-partition quota (capacity remainder dropped)."""

    def __init__(
        self,
        capacity_bytes: int,
        row_bytes: int,
        n_rows: int,
        *,
        n_partitions: int = 1,
        update_interval: int = 5,
    ) -> None:
        if row_bytes <= 0:
            raise IoSubsystemError(f"row_bytes must be > 0, got {row_bytes}")
        if n_rows <= 0:
            raise IoSubsystemError(f"n_rows must be > 0, got {n_rows}")
        if n_partitions <= 0:
            raise IoSubsystemError("n_partitions must be > 0")
        if update_interval <= 0:
            raise IoSubsystemError("update_interval must be > 0")
        self.capacity_rows = max(0, capacity_bytes) // row_bytes
        self.row_bytes = row_bytes
        self.n_rows = n_rows
        self.n_partitions = n_partitions
        self.update_interval = update_interval
        self._cached = np.zeros(n_rows, dtype=bool)
        self._next_refresh = update_interval
        self._gap = update_interval
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        self._bounds = np.linspace(
            0, n_rows, n_partitions + 1, dtype=np.int64
        )

    @property
    def cached_rows(self) -> int:
        return int(self._cached.sum())

    def lookup(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        mask = self._cached[rows]
        self.hits += int(mask.sum())
        self.misses += int(rows.size - mask.sum())
        return mask

    def should_refresh(self, iteration: int) -> bool:
        return iteration == self._next_refresh

    def refresh(self, iteration: int, active_rows: np.ndarray) -> int:
        if not self.should_refresh(iteration):
            raise IoSubsystemError(
                f"refresh called at iteration {iteration}, scheduled at "
                f"{self._next_refresh}"
            )
        self._cached[:] = False
        active_rows = np.asarray(active_rows, dtype=np.int64)
        per_part = self.capacity_rows // self.n_partitions
        admitted = 0
        for p in range(self.n_partitions):
            lo, hi = self._bounds[p], self._bounds[p + 1]
            mine = active_rows[(active_rows >= lo) & (active_rows < hi)]
            take = mine[:per_part]
            self._cached[take] = True
            admitted += int(take.size)
        self.refreshes += 1
        self._gap *= 2
        self._next_refresh = iteration + self._gap
        return admitted

    def fast_forward(self, iteration: int) -> None:
        while self._next_refresh <= iteration:
            self._next_refresh += self._gap * 2
            self._gap *= 2

    def clear(self) -> None:
        self._cached[:] = False
        self._gap = self.update_interval
        self._next_refresh = self.update_interval
