"""FIFO work-stealing scheduler (NUMA-oblivious stealing).

The Figure 5 baseline: threads first drain the tasks local to their own
partition, then steal from straggler threads *whose data resides on any
NUMA node* -- the stealing order ignores topology, so a stolen task is
usually remote. Every queue access takes that partition's lock; an idle
thread probing partitions in id order is exactly the scan a FIFO
stealing pool performs.
"""

from __future__ import annotations

from repro.sched.base import BaseScheduler
from repro.simhw.engine import ScheduleDecision
from repro.simhw.thread import SimThread


class FifoScheduler(BaseScheduler):
    """Partitioned queues, steal from anyone in thread-id order."""

    def next_task(self, thread: SimThread) -> ScheduleDecision | None:
        """Own queue first, then steal from any backlog in id order."""
        tid = thread.thread_id
        own = self._queues[tid]
        # Prowling stealers spread over T partition locks; the expected
        # contention on any one lock is their per-lock share.
        contenders = 1 + (
            self._n_prowling() + self._n_threads - 1
        ) // self._n_threads
        if own:
            return ScheduleDecision(
                task=own.popleft(),
                probe_contenders=(contenders,),
            )
        # Steal scan: walk partitions in id order starting after ours --
        # topology-oblivious, so the first victim found is usually on a
        # different NUMA node (the stolen task's data is remote).
        probes: list[int] = [contenders]  # the failed probe of our own
        for step in range(1, self._n_threads):
            victim = (tid + step) % self._n_threads
            queue = self._queues[victim]
            probes.append(contenders)
            if queue:
                task = queue.popleft()
                return ScheduleDecision(
                    task=task,
                    probe_contenders=tuple(probes),
                    stolen_from_node=self._thread_nodes[victim],
                    was_steal=True,
                )
        return None
