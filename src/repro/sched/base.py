"""Scheduler base class and shared helpers."""

from __future__ import annotations

import abc
from collections import deque

from repro.errors import SchedulerError
from repro.simhw.engine import ScheduleDecision, TaskWork
from repro.simhw.thread import SimThread


def owner_of_task(task_id: int, n_tasks: int, n_threads: int) -> int:
    """Thread that owns a task under the paper's block partitioning.

    Tasks are contiguous row blocks in dataset order; thread ``t`` owns
    the ``t``-th equal share of them, mirroring Figure 1's layout where
    thread ``t``'s data partition is rows ``[t*alpha, (t+1)*alpha)``.
    """
    if n_tasks <= 0:
        raise SchedulerError("no tasks to own")
    if not 0 <= task_id < n_tasks:
        raise SchedulerError(f"task_id {task_id} out of range")
    return min(task_id * n_threads // n_tasks, n_threads - 1)


class BaseScheduler(abc.ABC):
    """Common queue bookkeeping for all three scheduling policies."""

    def __init__(self) -> None:
        self._queues: list[deque[TaskWork]] = []
        self._thread_nodes: list[int] = []
        self._n_threads = 0

    def assign(self, tasks: list[TaskWork], threads: list[SimThread]) -> None:
        """Load a fresh iteration's tasks into per-thread queues."""
        if not threads:
            raise SchedulerError("assign() needs at least one thread")
        self._n_threads = len(threads)
        self._thread_nodes = [th.node for th in threads]
        self._queues = [deque() for _ in threads]
        n_tasks = len(tasks)
        for task in tasks:
            owner = owner_of_task(task.task_id, n_tasks, self._n_threads)
            self._queues[owner].append(task)

    def queue_lengths(self) -> list[int]:
        """Remaining tasks per partition (for tests and introspection)."""
        return [len(q) for q in self._queues]

    def _n_prowling(self) -> int:
        """Threads whose own queue is empty -- the potential stealers
        contending on everyone else's partition lock."""
        return sum(1 for q in self._queues if not q)

    @abc.abstractmethod
    def next_task(self, thread: SimThread) -> ScheduleDecision | None:
        """Hand ``thread`` its next task, or ``None`` when it should
        park at the barrier."""
