"""Task schedulers for the ||Lloyd's super-phase.

The paper compares three policies (Section 8.4, Figure 5):

* **static** -- each thread is pre-assigned ``n/T`` contiguous rows; no
  queue, no locks, no stealing. Optimal when work per row is uniform
  (MTI disabled).
* **FIFO** -- per-thread queues with unrestricted work stealing: an idle
  thread takes the next task from any backlog, regardless of where the
  task's data lives.
* **NUMA-aware partitioned priority queue** (knori's default, Figure 2)
  -- the queue is partitioned per thread, each partition has its own
  lock, and idle threads steal from partitions bound to the *same NUMA
  node first*, falling back to remote partitions only after one full
  priority-seeking cycle. This keeps stolen work node-local, which is
  what preserves the memory-locality optimization once MTI skews the
  per-task work.

All schedulers consume :class:`repro.simhw.TaskWork` items and answer
the engine's ``next_task`` calls with
:class:`repro.simhw.ScheduleDecision` records that carry exact lock
probe counts, so queue contention is charged faithfully.
"""

from repro.sched.base import BaseScheduler, owner_of_task
from repro.sched.static import StaticScheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.numa_aware import NumaAwareScheduler
from repro.sched.blocks import build_task_blocks, DEFAULT_TASK_ROWS

__all__ = [
    "BaseScheduler",
    "owner_of_task",
    "StaticScheduler",
    "FifoScheduler",
    "NumaAwareScheduler",
    "build_task_blocks",
    "DEFAULT_TASK_ROWS",
]
