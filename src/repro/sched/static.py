"""Static pre-assignment scheduler.

Each thread receives its ``n/T`` contiguous rows up front and never
takes a lock: there is no queue to contend on and no stealing. The
paper notes this is *sufficient for optimal performance when MTI
pruning is disabled* -- uniform work needs no balancing -- but it
collapses under pruning skew (Figure 5), because a thread whose
partition holds the "hard" rows finishes long after its peers.
"""

from __future__ import annotations

from repro.sched.base import BaseScheduler
from repro.simhw.engine import ScheduleDecision
from repro.simhw.thread import SimThread


class StaticScheduler(BaseScheduler):
    """No locks, no stealing: drain your own preassigned queue."""

    def next_task(self, thread: SimThread) -> ScheduleDecision | None:
        """Drain the caller's preassigned queue; never steal."""
        queue = self._queues[thread.thread_id]
        if not queue:
            return None
        # Static assignment has no shared state, hence no lock probes.
        return ScheduleDecision(task=queue.popleft(), probe_contenders=())
