"""NUMA-aware partitioned priority task queue (Figure 2).

knori's default scheduler. The queue is partitioned into ``T`` parts,
one per worker, each guarded by its own lock. A task's priority for a
given thread is determined by where its data lives: node-local tasks
are high priority, remote tasks low. The acquisition protocol follows
Section 5.2:

1. Take from your own partition if it has work (always node-local).
2. Otherwise cycle once through the other partitions *on your NUMA
   node* -- stolen work stays local, costing no remote traffic.
3. Only after that single high-priority cycle fails, settle for a
   (possibly lower-priority) task from a remote partition. This
   trade-off "avoids starvation and ensures threads are idle for
   negligible periods".

Compared to :class:`repro.sched.fifo.FifoScheduler`, the only change is
the steal *order* -- yet that is what preserves memory locality under
pruning skew, which is the entire point of Figure 5.
"""

from __future__ import annotations

from repro.sched.base import BaseScheduler
from repro.simhw.engine import ScheduleDecision, TaskWork
from repro.simhw.thread import SimThread


class NumaAwareScheduler(BaseScheduler):
    """Partitioned priority queue with local-node-first stealing."""

    def _steal_order(self, thread: SimThread) -> list[int]:
        """Partitions to probe: same-node first, then remote, both in
        deterministic id order starting after the caller."""
        tid = thread.thread_id
        node = thread.node
        ring = [(tid + s) % self._n_threads for s in range(1, self._n_threads)]
        local = [v for v in ring if self._thread_nodes[v] == node]
        remote = [v for v in ring if self._thread_nodes[v] != node]
        return local + remote

    def next_task(self, thread: SimThread) -> ScheduleDecision | None:
        """Own partition, then same-node victims, then remote."""
        tid = thread.thread_id
        own = self._queues[tid]
        # Contention on a partition lock: its owner plus any prowling
        # stealers that reached it. Partitioning keeps this near 1.
        prowlers_share = 1 + (
            self._n_prowling() + self._n_threads - 1
        ) // self._n_threads
        if own:
            return ScheduleDecision(
                task=own.popleft(),
                probe_contenders=(prowlers_share,),
            )
        probes: list[int] = [prowlers_share]
        for victim in self._steal_order(thread):
            queue = self._queues[victim]
            probes.append(prowlers_share)
            if queue:
                # Steal from the *back* of the victim's queue: the
                # owner keeps working the front, minimizing interference.
                task: TaskWork = queue.pop()
                return ScheduleDecision(
                    task=task,
                    probe_contenders=tuple(probes),
                    stolen_from_node=self._thread_nodes[victim],
                    was_steal=True,
                )
        return None
