"""Task construction: carve the dataset into contiguous row blocks.

The paper defines a task as "a block of data points in contiguous
memory given to a thread for computation" with a minimum task size of
8192 rows -- empirically small enough not to introduce artificial skew
on billion-point data (Section 8.4). Each block's exact work content
(rows needing data, distance computations after pruning) comes from the
algorithm's per-row statistics; this module only aggregates them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulerError
from repro.simhw.engine import TaskWork
from repro.simhw.machine import SimMachine

#: The paper's minimum task size (rows per block).
DEFAULT_TASK_ROWS = 8192


def auto_task_rows(n_rows: int, n_threads: int) -> int:
    """Task granularity scaled to the dataset.

    The paper's 8192-row minimum is tuned for billion-point data ("small
    enough to not artificially introduce skew in billion-point
    datasets"). At reproduction scale the same *ratio* matters: enough
    tasks per thread (~32; the paper's own billion-point runs give each
    thread ~170) that stealing can balance pruning skew, subject to the
    8192 ceiling and a floor that keeps per-task overhead sane.
    """
    if n_rows <= 0 or n_threads <= 0:
        raise SchedulerError("n_rows and n_threads must be positive")
    return max(64, min(DEFAULT_TASK_ROWS, -(-n_rows // (32 * n_threads))))


def build_task_blocks(
    n_rows: int,
    d: int,
    machine: SimMachine,
    *,
    dist_per_row: np.ndarray | None = None,
    needs_data: np.ndarray | None = None,
    task_rows: int = DEFAULT_TASK_ROWS,
    itemsize: int = 8,
    state_bytes_per_row: int = 12,
) -> list[TaskWork]:
    """Aggregate per-row stats into :class:`TaskWork` blocks.

    Parameters
    ----------
    n_rows, d:
        Dataset shape.
    machine:
        Supplies the NUMA placement of each block (Figure 1 layout or
        oblivious single-bank, depending on the machine's bind policy).
    dist_per_row:
        Exact distance computations performed per row this iteration.
        ``None`` means the unpruned ``k`` -- callers must pass the
        pruned counts themselves since this module does not know ``k``.
    needs_data:
        Boolean mask of rows whose row-data must be streamed (MTI
        clause 1 skips both compute *and* the data read). ``None``
        means every row is read.
    task_rows:
        Block granularity; the last block may be short.
    itemsize:
        Bytes per matrix element (8 for float64).
    state_bytes_per_row:
        Per-row algorithm state (4 B assignment + 8 B upper bound).
    """
    if n_rows <= 0:
        raise SchedulerError(f"n_rows must be positive, got {n_rows}")
    if task_rows <= 0:
        raise SchedulerError(f"task_rows must be positive, got {task_rows}")
    if dist_per_row is None:
        raise SchedulerError(
            "dist_per_row is required: pass k per row for unpruned runs"
        )
    dist_per_row = np.asarray(dist_per_row)
    if dist_per_row.shape != (n_rows,):
        raise SchedulerError(
            f"dist_per_row shape {dist_per_row.shape} != ({n_rows},)"
        )
    if needs_data is None:
        needs_data_arr = np.ones(n_rows, dtype=bool)
    else:
        needs_data_arr = np.asarray(needs_data, dtype=bool)
        if needs_data_arr.shape != (n_rows,):
            raise SchedulerError(
                f"needs_data shape {needs_data_arr.shape} != ({n_rows},)"
            )

    row_bytes = d * itemsize
    tasks: list[TaskWork] = []
    n_tasks = -(-n_rows // task_rows)
    for block in range(n_tasks):
        start = block * task_rows
        stop = min(start + task_rows, n_rows)
        rows = stop - start
        n_dist = int(dist_per_row[start:stop].sum())
        data_rows = int(needs_data_arr[start:stop].sum())
        # Home node: where this block's slice of the dataset lives.
        frac = start / n_rows
        tasks.append(
            TaskWork(
                task_id=block,
                n_rows=rows,
                n_dist=n_dist,
                data_bytes=data_rows * row_bytes,
                state_bytes=rows * state_bytes_per_row,
                home_node=machine.node_of_row_block(frac),
            )
        )
    return tasks
