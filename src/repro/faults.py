"""Deterministic fault injection: the failure plane of the simulation.

FlashGraph makes the SEM engine "tolerant to in-memory failures,
allowing recovery ... through lightweight checkpointing" (Section 2),
and clusterNOR grows knor into a long-running clustering service where
node loss is routine. This module makes those failure modes
first-class *simulated* events -- exactly like the cost models make
time first-class -- so recovery code is exercised deterministically
instead of never.

A :class:`FaultPlan` decides, per injection site, whether a fault
fires:

===========  ====================================================
site         injected fault
===========  ====================================================
``ssd``      read-batch error (retried per :class:`RetryPolicy`)
             or a slow-page latency spike
``worker``   process crash between iterations (checkpoint resume
             or restart-from-scratch, per backend)
``checkpoint``  crash at a chosen point *inside*
             ``save_checkpoint`` (schedule-only)
``node``     permanent machine loss in a distributed run
             (re-shard-and-continue or clean abort, per policy)
``net``      dropped allreduce transmission (timeout + retransmit)
``corruption``  flipped bytes in a simulated SSD page, a
             DRAM-resident cached row, a checkpoint array or an
             in-flight allreduce payload -- always *detected* by the
             CRC32 integrity layer (:mod:`repro.resilience`), then
             quarantined and re-read/retransmitted, or aborted with
             :class:`~repro.errors.CorruptionError`
``straggler``  a thread or machine that keeps running but slower by
             ``straggler_factor`` (detected by EWMA, answered by
             work re-partitioning; timing-plane only)
===========  ====================================================

Two construction modes:

* ``FaultPlan(spec, seed=s)`` -- rate-driven. Every site owns an
  independent ``default_rng([seed, site_index])`` stream, and the
  simulation's query sequence is itself deterministic, so the full
  fault trace is a pure function of ``(seed, spec, workload)`` --
  byte-for-byte reproducible, as asserted by the test suite.
* ``FaultPlan.from_schedule([...])`` -- explicit one-shot events for
  tests ("crash the worker after iteration 3"). Scheduled events are
  consumed when they fire, so an iteration replayed after recovery
  does not re-fire them.

Plans are stateful (consumed schedules, crash caps): build a fresh
plan per run.

Every injected fault and every recovery action is reported through the
:class:`~repro.runtime.RunObserver` ``on_fault`` / ``on_retry`` /
``on_recovery`` event family; nothing on this plane can change a
clustering result (numerics stay exact), only simulated time and the
control flow that re-derives the same numerics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError

#: Injection sites, in stream-index order (the order is part of the
#: on-disk meaning of a fault seed -- do not reorder; new sites are
#: appended so existing seeds keep their meaning).
SITES = ("ssd", "worker", "checkpoint", "node", "net", "corruption",
         "straggler")

#: Crash points accepted inside ``save_checkpoint``.
CHECKPOINT_CRASH_POINTS = (
    "arrays-written",       # arrays durable, manifest not yet committed
    "manifest-tmp-written",  # between tmp-write and the atomic rename
    "committed-no-gc",      # committed, stale arrays not yet collected
)


@dataclass(frozen=True)
class FaultSpec:
    """Per-site fault rates and caps for a seeded plan.

    Rates are per *query* (one SSD batch, one iteration boundary, one
    allreduce transmission...). Caps bound the recoverable-fault count
    so any plan with recoverable-only faults terminates.
    """

    ssd_error_rate: float = 0.0
    ssd_slow_rate: float = 0.0
    #: Service-time multiplier of a slow-page spike.
    ssd_slow_factor: float = 4.0
    #: Chance that a retry of a failed batch fails again.
    ssd_retry_fail_rate: float = 0.0
    worker_crash_rate: float = 0.0
    max_worker_crashes: int = 3
    node_failure_rate: float = 0.0
    max_node_failures: int = 1
    msg_drop_rate: float = 0.0
    max_msg_drops: int = 8
    #: Corruption rates: flipped bytes in an SSD page batch, a cached
    #: row, or an allreduce payload (checkpoint corruption is
    #: schedule-only, like checkpoint crashes).
    corruption_page_rate: float = 0.0
    corruption_cache_rate: float = 0.0
    corruption_msg_rate: float = 0.0
    #: Chance that the re-read/retransmission of corrupted data is
    #: corrupt again.
    corruption_repair_fail_rate: float = 0.0
    max_corruptions: int = 8
    #: Chance per iteration that one thread/machine starts straggling.
    straggler_rate: float = 0.0
    #: Execution-time multiplier of a straggling thread/machine.
    straggler_factor: float = 4.0
    max_stragglers: int = 2

    def __post_init__(self) -> None:
        for name in (
            "ssd_error_rate", "ssd_slow_rate", "ssd_retry_fail_rate",
            "worker_crash_rate", "node_failure_rate", "msg_drop_rate",
            "corruption_page_rate", "corruption_cache_rate",
            "corruption_msg_rate", "corruption_repair_fail_rate",
            "straggler_rate",
        ):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {v}")
        if self.ssd_error_rate + self.ssd_slow_rate > 1.0:
            raise ConfigError(
                "ssd_error_rate + ssd_slow_rate cannot exceed 1"
            )
        if self.ssd_slow_factor < 1.0:
            raise ConfigError(
                f"ssd_slow_factor must be >= 1, got {self.ssd_slow_factor}"
            )
        if self.straggler_factor < 1.0:
            raise ConfigError(
                f"straggler_factor must be >= 1, got "
                f"{self.straggler_factor}"
            )
        for name in (
            "max_worker_crashes", "max_node_failures", "max_msg_drops",
            "max_corruptions", "max_stragglers",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    @property
    def any_enabled(self) -> bool:
        return any(
            getattr(self, f) > 0.0
            for f in (
                "ssd_error_rate", "ssd_slow_rate", "worker_crash_rate",
                "node_failure_rate", "msg_drop_rate",
                "corruption_page_rate", "corruption_cache_rate",
                "corruption_msg_rate", "straggler_rate",
            )
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How recoveries are answered (and charged simulated time).

    * SSD read errors: up to ``max_retries`` re-reads, each preceded by
      an exponential backoff of ``backoff_ns * multiplier**(attempt-1)``.
    * Dropped allreduce transmissions: each drop costs ``timeout_ns``
      (the detection wait) plus a full retransmission, up to
      ``max_retries`` times.
    * Node failures: ``node_failure_mode="degraded"`` re-shards the
      dead machine's rows onto survivors and continues;
      ``"abort"`` raises a clean
      :class:`~repro.errors.NodeFailureError`.
    """

    max_retries: int = 3
    backoff_ns: float = 2e6
    backoff_multiplier: float = 2.0
    timeout_ns: float = 50e6
    node_failure_mode: str = "degraded"

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ConfigError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.backoff_ns < 0 or self.timeout_ns < 0:
            raise ConfigError("backoff_ns and timeout_ns must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if self.node_failure_mode not in ("degraded", "abort"):
            raise ConfigError(
                "node_failure_mode must be 'degraded' or 'abort', got "
                f"{self.node_failure_mode!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), ns.

        ``attempt=0`` means "no retry happened" and charges exactly
        0.0, so exhaustion accounting stays a pure function of the
        fault seed across backends (the naive exponential would
        charge ``backoff_ns / multiplier`` there -- a float that
        differs between sites that start counting at 0 vs. 1).
        """
        if attempt < 0:
            raise ConfigError(
                f"retry attempt must be >= 0, got {attempt}"
            )
        if attempt == 0:
            return 0.0
        return self.backoff_ns * self.backoff_multiplier ** (attempt - 1)

    def schedule(self, n: int | None = None) -> tuple[float, ...]:
        """The backoff schedule for attempts ``1..n`` (defaults to the
        full retry budget). A pinned, deterministic tuple: the total
        delay of an exhausted retry loop is ``sum(schedule())`` plus
        the per-site service charges, independent of which site
        retried."""
        n = self.max_retries if n is None else n
        return tuple(self.backoff(i) for i in range(1, n + 1))


#: The drivers' default policy when faults are enabled.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class FaultEvent:
    """One scheduled injection (tests' explicit-crash vocabulary).

    ``site`` is one of :data:`SITES`; ``kind`` names the fault within
    the site (``read_error`` / ``slow`` for ssd, ``crash`` for worker,
    a :data:`CHECKPOINT_CRASH_POINTS` entry for checkpoint, ``fail``
    for node, ``drop`` for net, ``page`` / ``cache`` / ``message`` /
    ``checkpoint`` for corruption, ``slow`` for straggler).
    ``machine`` targets a node failure or a straggling thread/machine;
    ``times`` repeats the event (a ``read_error`` with ``times=2``
    also fails the first retry; a corruption with ``times=2`` also
    corrupts the first re-read).
    """

    site: str
    iteration: int
    kind: str
    machine: int | None = None
    times: int = 1

    _KINDS = {
        "ssd": ("read_error", "slow"),
        "worker": ("crash",),
        "checkpoint": CHECKPOINT_CRASH_POINTS,
        "node": ("fail",),
        "net": ("drop",),
        "corruption": ("page", "cache", "message", "checkpoint"),
        "straggler": ("slow",),
    }

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; choose from {SITES}"
            )
        allowed = self._KINDS[self.site]
        if self.kind not in allowed:
            raise ConfigError(
                f"site {self.site!r} accepts kinds {allowed}, got "
                f"{self.kind!r}"
            )
        if self.times < 1:
            raise ConfigError(f"times must be >= 1, got {self.times}")


class FaultPlan:
    """Deterministic source of fault decisions for one run."""

    def __init__(
        self,
        spec: FaultSpec | None = None,
        *,
        seed: int = 0,
        schedule: list[FaultEvent] | None = None,
    ) -> None:
        self.spec = spec if spec is not None else FaultSpec()
        self.seed = seed
        self._schedule: list[FaultEvent] = [
            replace(ev) for ev in (schedule or [])
        ]
        self._rng = {
            site: np.random.default_rng([seed, i])
            for i, site in enumerate(SITES)
        }
        self.worker_crashes = 0
        self.node_failures = 0
        self.msg_drops = 0
        self.corruptions = 0
        self.stragglers = 0
        #: Can this plan ever produce a straggler / corruption? The
        #: backends gate the detection machinery (EWMA tracking, CRC
        #: verification) on these so plans without those sites keep
        #: byte-identical event traces with older code.
        self.straggler_enabled = self.spec.straggler_rate > 0.0 or any(
            ev.site == "straggler" for ev in self._schedule
        )
        self.corruption_enabled = (
            self.spec.corruption_page_rate > 0.0
            or self.spec.corruption_cache_rate > 0.0
            or self.spec.corruption_msg_rate > 0.0
            or any(ev.site == "corruption" for ev in self._schedule)
        )

    @classmethod
    def from_schedule(cls, events: list[FaultEvent]) -> "FaultPlan":
        """Explicit one-shot schedule (rates all zero)."""
        return cls(FaultSpec(), schedule=events)

    # -- schedule machinery -------------------------------------------

    def _take(
        self, site: str, iteration: int, kind: str | None = None
    ) -> FaultEvent | None:
        """Consume one matching scheduled event, if any."""
        for i, ev in enumerate(self._schedule):
            if ev.site != site or ev.iteration != iteration:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if ev.times > 1:
                ev.times -= 1
            else:
                del self._schedule[i]
            return ev
        return None

    def _draw(self, site: str) -> float:
        return float(self._rng[site].random())

    # -- query sites ---------------------------------------------------

    def ssd_fault(self, iteration: int) -> str | None:
        """Fault for one SSD read batch: 'read_error', 'slow', None."""
        ev = self._take("ssd", iteration)
        if ev is not None:
            return ev.kind
        spec = self.spec
        if spec.ssd_error_rate == 0.0 and spec.ssd_slow_rate == 0.0:
            return None
        u = self._draw("ssd")
        if u < spec.ssd_error_rate:
            return "read_error"
        if u < spec.ssd_error_rate + spec.ssd_slow_rate:
            return "slow"
        return None

    def ssd_retry_fails(self, iteration: int) -> bool:
        """Does the current retry of a failed batch fail again?"""
        if self._take("ssd", iteration, "read_error") is not None:
            return True
        if self.spec.ssd_retry_fail_rate == 0.0:
            return False
        return self._draw("ssd") < self.spec.ssd_retry_fail_rate

    def worker_crash(self, iteration: int) -> bool:
        """Does the worker crash after completing ``iteration``?"""
        if self._take("worker", iteration, "crash") is not None:
            self.worker_crashes += 1
            return True
        spec = self.spec
        if (
            spec.worker_crash_rate == 0.0
            or self.worker_crashes >= spec.max_worker_crashes
        ):
            return False
        if self._draw("worker") < spec.worker_crash_rate:
            self.worker_crashes += 1
            return True
        return False

    def checkpoint_crash(self, iteration: int) -> str | None:
        """Crash point inside this iteration's checkpoint save.

        Schedule-only: a mid-save crash is a surgical test fixture,
        not a rate-driven background hazard.
        """
        ev = self._take("checkpoint", iteration)
        return ev.kind if ev is not None else None

    def node_failure(
        self, iteration: int, alive: list[int]
    ) -> int | None:
        """Machine lost at the start of ``iteration``, if any."""
        ev = self._take("node", iteration, "fail")
        if ev is not None:
            self.node_failures += 1
            victim = ev.machine if ev.machine is not None else alive[0]
            return victim if victim in alive else None
        spec = self.spec
        if (
            spec.node_failure_rate == 0.0
            or self.node_failures >= spec.max_node_failures
            or len(alive) <= 1
        ):
            return None
        if self._draw("node") < spec.node_failure_rate:
            self.node_failures += 1
            idx = int(self._rng["node"].integers(len(alive)))
            return alive[idx]
        return None

    def drop_message(self, iteration: int) -> bool:
        """Is the current allreduce transmission dropped?"""
        if self._take("net", iteration, "drop") is not None:
            self.msg_drops += 1
            return True
        spec = self.spec
        if (
            spec.msg_drop_rate == 0.0
            or self.msg_drops >= spec.max_msg_drops
        ):
            return False
        if self._draw("net") < spec.msg_drop_rate:
            self.msg_drops += 1
            return True
        return False

    # -- corruption site ----------------------------------------------

    def _corruption(self, iteration: int, kind: str, rate: float) -> bool:
        if self._take("corruption", iteration, kind) is not None:
            self.corruptions += 1
            return True
        if rate == 0.0 or self.corruptions >= self.spec.max_corruptions:
            return False
        if self._draw("corruption") < rate:
            self.corruptions += 1
            return True
        return False

    def page_corruption(self, iteration: int) -> bool:
        """Is one page of the current SSD read batch corrupted?"""
        return self._corruption(
            iteration, "page", self.spec.corruption_page_rate
        )

    def cache_corruption(self, iteration: int) -> bool:
        """Is one DRAM-resident cached row corrupted this iteration?"""
        return self._corruption(
            iteration, "cache", self.spec.corruption_cache_rate
        )

    def message_corruption(self, iteration: int) -> bool:
        """Is the current allreduce payload corrupted in flight?"""
        return self._corruption(
            iteration, "message", self.spec.corruption_msg_rate
        )

    def checkpoint_corruption(self, iteration: int) -> bool:
        """Are this iteration's checkpoint arrays corrupted on disk?

        Schedule-only, like :meth:`checkpoint_crash`: flipping real
        bytes in a just-committed file is a surgical test fixture.
        """
        if self._take("corruption", iteration, "checkpoint") is not None:
            self.corruptions += 1
            return True
        return False

    def corruption_repair_fails(self, iteration: int, kind: str) -> bool:
        """Is the re-read/retransmission of corrupted data bad too?"""
        if self._take("corruption", iteration, kind) is not None:
            return True
        if self.spec.corruption_repair_fail_rate == 0.0:
            return False
        return (
            self._draw("corruption")
            < self.spec.corruption_repair_fail_rate
        )

    def corruption_offset(self, nbytes: int) -> int:
        """Deterministic byte offset for a flip (corruption stream)."""
        return int(self._rng["corruption"].integers(nbytes))

    # -- straggler site -----------------------------------------------

    def straggler(
        self, iteration: int, candidates: list[int]
    ) -> tuple[int, float] | None:
        """``(victim, slow_factor)`` if a worker starts straggling.

        ``candidates`` lists the healthy thread/machine ids still
        running at full speed; the victim is drawn from the straggler
        stream, so the choice is a pure function of the fault seed.
        """
        ev = self._take("straggler", iteration, "slow")
        if ev is not None:
            self.stragglers += 1
            victim = (
                ev.machine if ev.machine is not None else candidates[0]
            )
            if victim not in candidates:
                return None
            return victim, self.spec.straggler_factor
        spec = self.spec
        if (
            spec.straggler_rate == 0.0
            or self.stragglers >= spec.max_stragglers
            or not candidates
        ):
            return None
        if self._draw("straggler") < spec.straggler_rate:
            self.stragglers += 1
            idx = int(self._rng["straggler"].integers(len(candidates)))
            return candidates[idx], spec.straggler_factor
        return None


def faulty_collective_ns(
    plan: FaultPlan | None,
    policy: RetryPolicy,
    iteration: int,
    base_ns: float,
    observer,
    *,
    payload: "np.ndarray | None" = None,
) -> float:
    """Charge dropped/corrupted-allreduce timeouts and retransmissions.

    Each drop costs the detection timeout plus a full retransmission
    of the collective; the reduced *values* are unaffected (the
    arithmetic already happened in-process, deterministically).
    A corrupted in-flight ``payload`` is detected by a real CRC32
    check of the tampered bytes, then retransmitted under the same
    budget. Raises :class:`~repro.errors.RetryExhaustedError` /
    :class:`~repro.errors.CorruptionError` past the policy's budget.
    """
    from repro.errors import CorruptionError, RetryExhaustedError

    if plan is None:
        return base_ns
    total = base_ns
    attempt = 0
    while plan.drop_message(iteration):
        attempt += 1
        observer.on_fault(
            iteration, "net", "drop", {"attempt": attempt}
        )
        if attempt > policy.max_retries:
            raise RetryExhaustedError(
                f"allreduce dropped {attempt} times at iteration "
                f"{iteration} (retry budget {policy.max_retries})"
            )
        total += policy.timeout_ns + base_ns
        observer.on_retry(iteration, "net", attempt, policy.timeout_ns)
    if attempt:
        observer.on_recovery(
            iteration, "net", "retransmit", {"attempts": attempt}
        )
    if plan.message_corruption(iteration):
        from repro.resilience.integrity import crc32_bytes, flip_byte

        clean = (
            np.ascontiguousarray(payload).tobytes()
            if payload is not None
            else int(iteration).to_bytes(8, "little", signed=True)
        )
        crc = crc32_bytes(clean)
        bad = 0
        while True:
            bad += 1
            offset = plan.corruption_offset(len(clean))
            detected = crc32_bytes(flip_byte(clean, offset)) != crc
            if not detected:  # unreachable: CRC32 catches 1-byte flips
                raise CorruptionError(
                    "allreduce payload corruption escaped the CRC32 "
                    f"check at iteration {iteration}"
                )
            observer.on_fault(
                iteration, "corruption", "message",
                {"attempt": bad, "offset": offset},
            )
            observer.on_corruption(
                iteration, "net-payload",
                {"offset": offset, "attempt": bad},
            )
            if bad > policy.max_retries:
                raise CorruptionError(
                    f"allreduce payload corrupt {bad} times at "
                    f"iteration {iteration} (retry budget "
                    f"{policy.max_retries})"
                )
            total += policy.timeout_ns + base_ns
            observer.on_retry(
                iteration, "corruption", bad, policy.timeout_ns
            )
            if not plan.corruption_repair_fails(iteration, "message"):
                break
        observer.on_recovery(
            iteration, "corruption", "retransmit", {"attempts": bad}
        )
    return total


# -- CLI spec parsing ----------------------------------------------------

_SPEC_KEYS = {
    "ssd_error": "ssd_error_rate",
    "ssd_slow": "ssd_slow_rate",
    "ssd_slow_factor": "ssd_slow_factor",
    "ssd_retry_fail": "ssd_retry_fail_rate",
    "worker_crash": "worker_crash_rate",
    "max_worker_crashes": "max_worker_crashes",
    "node_fail": "node_failure_rate",
    "max_node_failures": "max_node_failures",
    "msg_drop": "msg_drop_rate",
    "max_msg_drops": "max_msg_drops",
    "corrupt_page": "corruption_page_rate",
    "corrupt_cache": "corruption_cache_rate",
    "corrupt_msg": "corruption_msg_rate",
    "corrupt_repair_fail": "corruption_repair_fail_rate",
    "max_corruptions": "max_corruptions",
    "straggler": "straggler_rate",
    "straggler_factor": "straggler_factor",
    "max_stragglers": "max_stragglers",
}

_POLICY_KEYS = {
    "retries": ("max_retries", int),
    "backoff_ms": ("backoff_ns", lambda v: float(v) * 1e6),
    "multiplier": ("backoff_multiplier", float),
    "timeout_ms": ("timeout_ns", lambda v: float(v) * 1e6),
    "node_failure": ("node_failure_mode", str),
}


def _pairs(text: str, what: str) -> list[tuple[str, str]]:
    out = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(
                f"malformed {what} entry {part!r} (expected key=value)"
            )
        key, value = part.split("=", 1)
        out.append((key.strip(), value.strip()))
    return out

def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI's ``--faults`` spec, e.g.
    ``"ssd_error=0.05,worker_crash=0.1,msg_drop=0.02"``."""
    int_fields = {
        "max_worker_crashes", "max_node_failures", "max_msg_drops",
        "max_corruptions", "max_stragglers",
    }
    kwargs: dict = {}
    for key, value in _pairs(text, "--faults"):
        if key not in _SPEC_KEYS:
            raise ConfigError(
                f"unknown fault key {key!r}; choose from "
                f"{sorted(_SPEC_KEYS)}"
            )
        name = _SPEC_KEYS[key]
        kwargs[name] = int(value) if name in int_fields else float(value)
    return FaultSpec(**kwargs)


def parse_retry_policy(text: str) -> RetryPolicy:
    """Parse the CLI's ``--retry-policy`` spec, e.g.
    ``"retries=5,backoff_ms=2,timeout_ms=50,node_failure=abort"``."""
    kwargs: dict = {}
    for key, value in _pairs(text, "--retry-policy"):
        if key not in _POLICY_KEYS:
            raise ConfigError(
                f"unknown retry-policy key {key!r}; choose from "
                f"{sorted(_POLICY_KEYS)}"
            )
        name, conv = _POLICY_KEYS[key]
        kwargs[name] = conv(value)
    return RetryPolicy(**kwargs)


#: Public key lists -- the CLI generates its ``--faults`` /
#: ``--retry-policy`` help from these so the text can never drift from
#: the parser.
FAULT_SPEC_KEYS = tuple(sorted(_SPEC_KEYS))
RETRY_POLICY_KEYS = tuple(sorted(_POLICY_KEYS))


def format_fault_spec(spec: FaultSpec) -> str:
    """Inverse of :func:`parse_fault_spec`: only non-default keys, so
    ``parse_fault_spec(format_fault_spec(s)) == s``."""
    default = FaultSpec()
    parts = []
    for key in FAULT_SPEC_KEYS:
        name = _SPEC_KEYS[key]
        value = getattr(spec, name)
        if value != getattr(default, name):
            parts.append(f"{key}={value:g}")
    return ",".join(parts)


def format_retry_policy(policy: RetryPolicy) -> str:
    """Inverse of :func:`parse_retry_policy` (non-default keys only)."""
    default = RetryPolicy()
    parts = []
    for key in RETRY_POLICY_KEYS:
        name, _conv = _POLICY_KEYS[key]
        value = getattr(policy, name)
        if value == getattr(default, name):
            continue
        if name in ("backoff_ns", "timeout_ns"):
            parts.append(f"{key}={value / 1e6:g}")
        elif isinstance(value, str):
            parts.append(f"{key}={value}")
        else:
            parts.append(f"{key}={value:g}")
    return ",".join(parts)
