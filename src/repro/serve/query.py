"""The assignment-query path: answering "which cluster is this point
in?" under simulated user traffic.

A :class:`ServePlane` owns a fitted model (centroids + Sculley counts)
and the same hardware stack the batch runners build -- a
:class:`~repro.simhw.machine.SimMachine`, the SAFS page cache, the
partitioned :class:`~repro.sem.rowcache.RowCache`, and one shared
:class:`~repro.core.workspace.DistanceWorkspace`. Traffic comes from a
seeded :class:`~repro.simhw.serving.ArrivalProcess`; the
:class:`~repro.simhw.serving.OpenLoopBatcher` coalesces concurrent
arrivals into dispatch batches.

Per batch, the plane:

1. fetches the touched rows through the SEM hierarchy (hot rows hit
   the row cache for free; cold rows charge page-cache / SSD simulated
   time, and the fault plane's SSD-error / corruption /
   cache-quarantine machinery applies verbatim, with the batch index
   standing in for the iteration number);
2. assigns the batch with ``nearest_centroid`` through the shared
   workspace and prices the distance work on the simhw engine
   (``reduction=False`` -- an assignment-only pass merges nothing);
3. folds any ingest arrivals into the centroids with the same
   vectorized mini-batch update the :class:`MiniBatchMM` driver uses,
   continuing the per-center learning-rate schedule;
4. completes the batch on the open-loop clock, accruing per-arrival
   latency, and emits ``on_query`` / ``on_ingest`` observer events.

The two-plane invariant holds throughout: caches and faults shape
*simulated time only* -- the returned assignments are bit-identical
with caches on or off, and (with no ingest) equal to a batch
``nearest_centroid`` over the same rows. ``tests/test_serve.py`` pins
both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.baselines.minibatch import minibatch_update
from repro.core.distance import nearest_centroid
from repro.core.workspace import DistanceWorkspace
from repro.errors import ConfigError, DatasetError
from repro.mem import use_manager
from repro.metrics.latency import latency_percentiles
from repro.runtime.observer import RunObserver, chain_observers
from repro.simhw.serving import (
    ArrivalProcess,
    ArrivalTrace,
    OpenLoopBatcher,
)


@dataclass
class ServeResult:
    """One serve run's answers plus its simulated-time accounting."""

    algorithm: str
    n_arrivals: int
    n_queries: int
    n_ingested: int
    n_batches: int
    assignments: np.ndarray
    rows: np.ndarray
    is_ingest: np.ndarray
    latency_ns: np.ndarray
    percentiles: dict[str, float]
    sim_seconds: float
    io_service_ns: float
    compute_ns: float
    row_cache_hits: int
    rows_requested: int
    pages_from_ssd: int
    bytes_read: int
    centroids: np.ndarray
    counts: np.ndarray
    params: dict = field(default_factory=dict)

    @property
    def query_latency_ns(self) -> np.ndarray:
        """Latencies of the query (non-ingest) arrivals only."""
        return self.latency_ns[~self.is_ingest]

    def to_dict(self) -> dict:
        """JSON-safe rollup (scalars and percentiles, no arrays)."""
        return {
            "algorithm": self.algorithm,
            "n_arrivals": self.n_arrivals,
            "n_queries": self.n_queries,
            "n_ingested": self.n_ingested,
            "n_batches": self.n_batches,
            "latency": dict(self.percentiles),
            "sim_seconds": self.sim_seconds,
            "io_service_ns": self.io_service_ns,
            "compute_ns": self.compute_ns,
            "row_cache_hits": self.row_cache_hits,
            "rows_requested": self.rows_requested,
            "pages_from_ssd": self.pages_from_ssd,
            "bytes_read": self.bytes_read,
            "params": dict(self.params),
        }


class ServePlane:
    """A live serving endpoint over a fitted clustering model."""

    def __init__(
        self,
        x: np.ndarray,
        centroids: np.ndarray,
        *,
        counts: np.ndarray | None = None,
        ssd: Any = None,
        cost_model: Any = None,
        n_threads: int | None = None,
        bind_policy: Any = None,
        scheduler: str = "numa_aware",
        row_cache_bytes: int | None = None,
        page_cache_bytes: int | None = None,
        cache_update_interval: int = 5,
        io_queue_depth: int = 32,
        max_batch: int = 256,
        batch_window_ns: float = 50_000.0,
        observers: Sequence[RunObserver] = (),
        faults: Any = None,
        retry_policy: Any = None,
        kernel: str = "blocked",
        tenant: str | None = None,
        mem: Any = None,
        mem_budget_bytes: int | None = None,
    ) -> None:
        from repro.drivers.common import (
            make_scheduler,
            resolve_memory_manager,
        )
        from repro.runtime.memory import register_mm_memory
        from repro.sem import RowCache, RowEngine, Safs
        from repro.simhw import BindPolicy, FOUR_SOCKET_XEON, SimMachine
        from repro.simhw.ssd import AsyncIoQueue, OCZ_INTREPID_ARRAY

        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        if x.ndim != 2:
            raise DatasetError(f"x must be 2-D, got shape {x.shape}")
        centroids = np.array(centroids, dtype=np.float64, copy=True)
        if centroids.ndim != 2 or centroids.shape[1] != x.shape[1]:
            raise DatasetError(
                f"centroids shape {centroids.shape} incompatible with "
                f"data dimension {x.shape[1]}"
            )
        if max_batch < 1:
            raise ConfigError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        n, d = x.shape
        k = centroids.shape[0]
        self.x = x
        self.n_rows = n
        self.d = d
        self.k = k
        self.centroids = centroids
        self.counts = (
            np.array(counts, dtype=np.int64, copy=True)
            if counts is not None
            else np.zeros(k, dtype=np.int64)
        )
        if self.counts.shape != (k,):
            raise ConfigError(
                f"counts shape {self.counts.shape} != ({k},)"
            )
        self.max_batch = max_batch
        self.batch_window_ns = float(batch_window_ns)
        #: Owning tenant in a multi-tenant deployment; stamped into
        #: every ``on_query`` / ``on_ingest`` event detail so a shared
        #: observer can attribute load per tenant.
        self.tenant = tenant

        ssd = ssd or OCZ_INTREPID_ARRAY
        row_bytes = d * 8
        data_bytes = n * row_bytes
        if row_cache_bytes is None:
            row_cache_bytes = data_bytes // 32
        if page_cache_bytes is None:
            page_cache_bytes = max(
                64 * ssd.page_bytes, data_bytes // 16
            )
        self.machine = SimMachine.build(
            cost_model or FOUR_SOCKET_XEON,
            n_threads=n_threads,
            bind_policy=bind_policy or BindPolicy.NUMA_BIND,
            ssd=ssd,
        )
        self._sched = make_scheduler(scheduler)
        # The serving plane's manager outlives __init__: serve() pushes
        # it again so streaming-path allocations stay pooled/capped.
        self.mem_manager = resolve_memory_manager(
            mem, mem_budget_bytes, observers
        )
        with use_manager(self.mem_manager):
            safs = Safs(
                ssd,
                page_cache_bytes=page_cache_bytes,
                faults=faults,
                retry_policy=retry_policy,
                io_queue=AsyncIoQueue(queue_depth=io_queue_depth),
            )
            self.row_cache = (
                RowCache(
                    row_cache_bytes,
                    row_bytes,
                    n,
                    n_partitions=self.machine.n_threads,
                    update_interval=cache_update_interval,
                )
                if row_cache_bytes > 0
                else None
            )
            self.io = RowEngine(
                safs, row_bytes, n, row_cache=self.row_cache
            )
            register_mm_memory(
                self.machine, n, d,
                state_bytes_per_row=4,
                model_slots=k,
                resident_rows=False,
                row_cache_bytes=row_cache_bytes,
                page_cache_bytes=page_cache_bytes,
            )
            self.workspace = DistanceWorkspace(k, d, kernel=kernel)
        self.kernel = self.workspace.kernel
        self.observer = chain_observers(tuple(observers))
        self.batch_index = 0

    def _price_compute(self, m: int) -> float:
        """Simulated nanoseconds to assign ``m`` rows on the machine
        (an assignment-only pass: no centroid reduction)."""
        from repro.sched.blocks import auto_task_rows, build_task_blocks

        tasks = build_task_blocks(
            m, self.d, self.machine,
            dist_per_row=np.full(m, self.k, dtype=np.int64),
            needs_data=np.ones(m, dtype=bool),
            task_rows=auto_task_rows(m, self.machine.n_threads),
            state_bytes_per_row=4,
        )
        trace = self.machine.engine.run(
            self._sched, tasks, self.machine.threads,
            d=self.d, k=self.k, reduction=False,
        )
        return float(trace.total_ns)

    def serve(
        self, arrivals: ArrivalProcess | ArrivalTrace
    ) -> ServeResult:
        """Drain an arrival stream and return answers + latency."""
        trace = (
            arrivals.generate(self.n_rows)
            if isinstance(arrivals, ArrivalProcess)
            else arrivals
        )
        if trace.row.size and (
            trace.row.min() < 0 or trace.row.max() >= self.n_rows
        ):
            raise DatasetError(
                "arrival rows out of range for the served dataset"
            )
        batcher = OpenLoopBatcher(
            trace.time_ns,
            max_batch=self.max_batch,
            window_ns=self.batch_window_ns,
        )
        n_arr = trace.n_arrivals
        assignments = np.full(n_arr, -1, dtype=np.int32)
        io_service_ns = 0.0
        compute_ns = 0.0
        row_cache_hits = 0
        rows_requested = 0
        pages_from_ssd = 0
        bytes_read = 0
        n_ingested = 0

        with use_manager(self.mem_manager):
            while (b := batcher.next_batch()) is not None:
                lo, hi, _dispatch = b
                rows = trace.row[lo:hi]
                ingest_mask = trace.is_ingest[lo:hi]
                needs = np.zeros(self.n_rows, dtype=bool)
                needs[rows] = True
                io = self.io.run_iteration(
                    self.batch_index, needs, self.observer
                )
                self.observer.on_io(self.batch_index, io)
                io_service_ns += io.service_ns
                row_cache_hits += io.row_cache_hits
                rows_requested += io.rows_requested
                pages_from_ssd += io.pages_from_ssd
                bytes_read += io.bytes_read

                assign, _ = nearest_centroid(
                    self.x[rows], self.centroids,
                    workspace=self.workspace,
                )
                assignments[lo:hi] = assign
                batch_compute_ns = self._price_compute(hi - lo)
                compute_ns += batch_compute_ns
                done = batcher.complete(
                    io.service_ns + batch_compute_ns
                )

                n_ing = int(np.count_nonzero(ingest_mask))
                if n_ing:
                    # Fresh array: the workspace caches ||c||^2 by
                    # identity.
                    folded = self.centroids.copy()
                    minibatch_update(
                        folded, self.counts,
                        self.x[rows[ingest_mask]], assign[ingest_mask],
                    )
                    self.centroids = folded
                    n_ingested += n_ing
                    detail = {"counts_total": int(self.counts.sum())}
                    if self.tenant is not None:
                        detail["tenant"] = self.tenant
                    self.observer.on_ingest(
                        self.batch_index, n_ing, detail,
                    )
                n_q = (hi - lo) - n_ing
                if n_q:
                    worst = float(done - trace.time_ns[lo])
                    detail = {"io_ns": io.service_ns,
                              "compute_ns": batch_compute_ns}
                    if self.tenant is not None:
                        detail["tenant"] = self.tenant
                    self.observer.on_query(
                        self.batch_index, n_q, worst, detail,
                    )
                self.batch_index += 1

        query_lat = batcher.latency_ns[~trace.is_ingest]
        sample = query_lat if query_lat.size else batcher.latency_ns
        return ServeResult(
            algorithm="serve-assign",
            n_arrivals=n_arr,
            n_queries=n_arr - n_ingested,
            n_ingested=n_ingested,
            n_batches=len(batcher.batches),
            assignments=assignments,
            rows=trace.row.copy(),
            is_ingest=trace.is_ingest.copy(),
            latency_ns=batcher.latency_ns,
            percentiles=latency_percentiles(sample),
            sim_seconds=batcher.sim_end_ns / 1e9,
            io_service_ns=io_service_ns,
            compute_ns=compute_ns,
            row_cache_hits=row_cache_hits,
            rows_requested=rows_requested,
            pages_from_ssd=pages_from_ssd,
            bytes_read=bytes_read,
            centroids=self.centroids,
            counts=self.counts,
            params={
                "n": self.n_rows, "d": self.d, "k": self.k,
                "max_batch": self.max_batch,
                "batch_window_ns": self.batch_window_ns,
                "T": self.machine.n_threads,
                "kernel": self.kernel,
            },
        )
