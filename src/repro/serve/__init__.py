"""The online serving plane: streaming ingest + assignment queries.

Two halves, both riding the existing runtime:

* :class:`MiniBatchMM` -- Sculley mini-batch k-means as a first-class
  MM algorithm (``--algorithm=minibatch``), inheriting observers,
  fault recovery and v4 checkpoints from the MM plane. Its
  ``needs_data`` is the sampled batch, so the SEM backend's I/O shape
  *is* a streaming ingest path.
* :class:`ServePlane` -- assignment queries under seeded open-loop
  user traffic (:class:`~repro.simhw.serving.ArrivalProcess`),
  batched through a shared DistanceWorkspace, served from the
  RowCache/PageCache hierarchy, with p50/p99/p999 simulated latency
  as the product.
"""

from repro.serve.ingest import MiniBatchMM
from repro.serve.query import ServePlane, ServeResult

__all__ = ["MiniBatchMM", "ServePlane", "ServeResult"]
