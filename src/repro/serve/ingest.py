"""Streaming ingest: mini-batch k-means as a first-class MM algorithm.

This promotes ``baselines/minibatch.py`` onto the MM plane. Each
``majorize`` samples one seeded mini-batch, assigns it with the shared
:class:`~repro.core.workspace.DistanceWorkspace`, and folds it into
the centroids with Sculley's per-center learning rates via the
vectorized :func:`repro.baselines.minibatch.minibatch_update`. The
numerics are global and sequential -- one RNG stream, one centroid
array -- so the model is bit-identical across the InMemory / Sem /
Distributed backends by construction, and bit-identical to the
standalone :func:`~repro.baselines.minibatch.minibatch_kmeans`
baseline for the same parameters (pinned by ``tests/test_serve.py``).

What the substrates add is the hardware story: ``needs_data`` is the
sampled batch, so the SEM backend fetches *only the arriving rows*
each step -- exactly the I/O shape of a streaming ingest path -- and
the RNG state rides inside checkpoint format v4 (the PCG64 state dict
is JSON-safe), so a crash-restored run resumes the sample stream
mid-sequence and stays bit-identical to the uninterrupted one.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.minibatch import minibatch_update
from repro.core.centroids import flat_sums
from repro.core.distance import nearest_centroid, rows_to_centroids
from repro.core.workspace import DistanceWorkspace
from repro.errors import ConfigError, DatasetError
from repro.metrics import RunResult
from repro.runtime.mm import MMStep

DEFAULT_N_STEPS = 100


class MiniBatchMM:
    """Sculley mini-batch k-means on the MM plane.

    ``majorize`` both advances the model and installs it (the KmeansMM
    precedent), exposing the batch's per-cluster sums/counts as the
    accumulator payload so the distributed allreduce prices the same
    traffic a sharded implementation would move. ``minimize`` is a
    no-op. The step budget comes from ``n_steps`` (or
    ``criteria.max_iters`` when driven through the generic CLI path);
    like the baseline, the run never reports convergence -- SGD runs
    its budget.
    """

    name = "minibatch"

    def __init__(
        self,
        x: np.ndarray,
        k: int,
        *,
        batch_size: int = 1024,
        n_steps: int | None = None,
        init: str | np.ndarray = "random",
        seed: int = 0,
        criteria: Any = None,
        kernel: str = "blocked",
    ) -> None:
        from repro.drivers.common import resolve_init

        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"x must be 2-D, got shape {x.shape}")
        n, d = x.shape
        if k > n:
            raise DatasetError(
                f"k={k} clusters cannot exceed the n={n} data rows"
            )
        if batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if n_steps is None:
            n_steps = (
                criteria.max_iters if criteria is not None
                else DEFAULT_N_STEPS
            )
        if n_steps < 1:
            raise ConfigError(f"n_steps must be >= 1, got {n_steps}")
        self.x = x
        self.k = k
        self.n_rows = n
        self.d = d
        self.batch_size = batch_size
        self.n_steps = n_steps
        self.max_iters = n_steps
        self.seed = seed
        self.reduction_slots = k
        self.state_bytes_per_row = 4  # int32 last-seen assignment
        self._centroids0 = resolve_init(x, k, init, seed)
        self._workspace = DistanceWorkspace(k, d, kernel=kernel)
        self.kernel = self._workspace.kernel
        self.centroids = self._centroids0.copy()
        self.counts = np.zeros(k, dtype=np.int64)
        self.assignment = np.full(n, -1, dtype=np.int32)
        self._rng = np.random.default_rng(seed)
        self._step = 0

    def majorize(self) -> MMStep:
        n, k = self.n_rows, self.k
        batch_idx = self._rng.integers(
            0, n, size=min(self.batch_size, n)
        )
        batch = self.x[batch_idx]
        assign, _ = nearest_centroid(
            batch, self.centroids, workspace=self._workspace
        )
        changed = int(
            np.count_nonzero(self.assignment[batch_idx] != assign)
        )
        self.assignment[batch_idx] = assign
        payload = {
            "sums": flat_sums(batch, assign, k),
            "counts": np.bincount(assign, minlength=k).astype(
                np.float64
            ),
        }
        # The workspace caches ||c||^2 by array identity, so the fold
        # goes into a fresh array rather than mutating in place.
        new_centroids = self.centroids.copy()
        minibatch_update(new_centroids, self.counts, batch, assign)
        self.centroids = new_centroids
        self._step += 1
        return MMStep(
            dist_per_row=np.bincount(batch_idx, minlength=n) * k,
            needs_data=np.bincount(batch_idx, minlength=n) > 0,
            n_changed=changed,
            payload=payload,
        )

    def minimize(self, payload: dict[str, np.ndarray]) -> None:
        """No-op: ``majorize`` already folded the batch (the Sculley
        recurrence is order-dependent, so the fold stays sequential);
        the payload priced the collective."""

    def converged(self) -> bool:
        return False  # SGD-style: runs for the step budget

    def reset(self) -> None:
        self.centroids = self._centroids0.copy()
        self.counts[:] = 0
        self.assignment[:] = -1
        self._rng = np.random.default_rng(self.seed)
        self._step = 0

    def export_state(self) -> dict:
        return {
            "iteration": self._step,
            "centroids": self.centroids.copy(),
            "counts": self.counts.copy(),
            "assignment": self.assignment.copy(),
            "rng": self._rng.bit_generator.state,
        }

    def restore_state(self, snap: dict) -> None:
        self.centroids = np.array(snap["centroids"], dtype=np.float64)
        self.counts = np.array(snap["counts"], dtype=np.int64)
        self.assignment = np.array(snap["assignment"], dtype=np.int32)
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = snap["rng"]
        self._step = int(snap["iteration"])

    @property
    def model_array(self) -> np.ndarray:
        return self.centroids

    def result(
        self,
        loop_result: Any,
        *,
        memory_breakdown: dict[str, int] | None = None,
        extra_params: dict | None = None,
    ) -> RunResult:
        final_assign, _ = nearest_centroid(
            self.x, self.centroids, workspace=self._workspace
        )
        dist = rows_to_centroids(self.x, self.centroids, final_assign)
        return loop_result.as_run_result(
            algorithm="mm-minibatch",
            centroids=self.centroids,
            assignment=final_assign,
            inertia=float((dist**2).sum()),
            memory_breakdown=memory_breakdown,
            params={
                "n": self.n_rows, "d": self.d, "k": self.k,
                "batch_size": self.batch_size,
                "n_steps": self.n_steps, "algorithm": self.name,
                **(extra_params or {}),
            },
        )
