"""knor reproduction: NUMA-optimized k-means (HPDC 2017).

A full reimplementation of the knor library -- in-memory (knori),
semi-external-memory (knors) and distributed (knord) k-means with
||Lloyd's merged-phase parallelization and Minimal Triangle Inequality
(MTI) pruning -- running on a deterministic simulated NUMA/SSD/cluster
hardware substrate (see DESIGN.md for the substitution rationale).

Quick start
-----------
>>> import numpy as np
>>> from repro import knori
>>> rng = np.random.default_rng(0)
>>> x = np.vstack([rng.normal(loc=m, size=(200, 4)) for m in (0.0, 8.0)])
>>> result = knori(x, 2, seed=1)
>>> result.converged
True
>>> sorted(result.cluster_sizes.tolist())
[200, 200]

Public API
----------
* :func:`knori` / :func:`knors` / :func:`knord` -- the three modules
  (thin shims over the unified :mod:`repro.runtime` execution layer).
* :mod:`repro.runtime` -- execution backends, the iteration
  orchestrator, and :class:`~repro.runtime.RunObserver` trace hooks.
* :func:`repro.core.lloyd` -- serial reference implementation.
* :mod:`repro.data` -- Table 2 dataset generators and on-disk format.
* :mod:`repro.baselines` -- serial strategies, naive parallel Lloyd's,
  framework comparators, pure MPI, mini-batch.
* :mod:`repro.simhw`, :mod:`repro.sem`, :mod:`repro.dist` -- the
  simulated hardware substrates.
* :mod:`repro.faults` -- deterministic fault injection
  (:class:`FaultPlan`, :class:`FaultSpec`, :class:`RetryPolicy`) and
  the recovery machinery the drivers answer it with.
"""

from repro.core.convergence import ConvergenceCriteria
from repro.core.lloyd import lloyd
from repro.drivers import knord, knori, knors
from repro.faults import FaultEvent, FaultPlan, FaultSpec, RetryPolicy
from repro.metrics import RunResult

__version__ = "1.0.0"

__all__ = [
    "knori",
    "knors",
    "knord",
    "lloyd",
    "ConvergenceCriteria",
    "RunResult",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "__version__",
]
