"""Empty-cluster recovery policies.

When no point chooses a centroid, the library has historically kept the
centroid in place (knor's default, here called ``"drop"`` -- the
cluster is dropped from this update but survives with its old mean).
Two further policies are offered:

* ``"reseed"``: knor-style farthest-point reseeding. Each empty
  centroid jumps to the point currently farthest from its assigned
  centroid -- the point most poorly served by the clustering -- which
  both revives the cluster and caps the objective's worst term. Ties
  break to the lowest row index and a point is used for at most one
  reseed, so the outcome is deterministic.
* ``"error"``: raise :class:`~repro.errors.EmptyClusterError`. For
  pipelines where a vanished cluster means the ``k`` was wrong and the
  run should fail loudly instead of silently returning fewer real
  clusters.

Reseeding perturbs the iteration's numerics (a centroid moves, a point
changes membership), so it only composes with the unpruned algorithm;
the pruned algorithms' bound structures (MTI upper bounds, Elkan's
bound matrix) would be invalidated by a teleporting centroid. Drivers
enforce that combination with :class:`~repro.errors.ConfigError`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Accepted values for the ``empty_cluster`` driver parameter.
EMPTY_CLUSTER_POLICIES = ("drop", "reseed", "error")


def check_empty_cluster_policy(policy: str) -> str:
    """Validate an ``empty_cluster`` argument and pass it through."""
    if policy not in EMPTY_CLUSTER_POLICIES:
        raise ConfigError(
            f"empty_cluster must be one of {EMPTY_CLUSTER_POLICIES}, "
            f"got {policy!r}"
        )
    return policy


def reseed_empty_clusters(
    x: np.ndarray,
    centroids: np.ndarray,
    assignment: np.ndarray,
    mindist: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Reseed every empty cluster from the current farthest point.

    Empty clusters are processed in ascending cluster order; each takes
    the unused point with the largest distance to its assigned centroid
    (``np.argmax`` ties break to the lowest index). The point's old
    cluster loses a member, the revived cluster gains one, and the
    point's distance-to-centroid drops to zero (it *is* the centroid).

    Returns ``(centroids, assignment, mindist, counts, reseeded)`` --
    fresh arrays, inputs untouched -- where ``reseeded`` lists the
    cluster ids that were revived.
    """
    out = np.array(centroids, dtype=np.float64, copy=True)
    assign = np.array(assignment, copy=True)
    md = np.array(mindist, dtype=np.float64, copy=True)
    cnt = np.array(counts, copy=True)
    if md.shape[0] != assign.shape[0]:
        raise ConfigError(
            f"mindist has {md.shape[0]} rows, assignment "
            f"{assign.shape[0]}"
        )
    scores = md.copy()
    reseeded: list[int] = []
    for c in np.nonzero(cnt == 0)[0]:
        p = int(np.argmax(scores))
        if not np.isfinite(scores[p]) and scores[p] < 0:
            break  # every point already spent on an earlier reseed
        out[c] = x[p]
        cnt[int(assign[p])] -= 1
        cnt[c] += 1
        assign[p] = c
        md[p] = 0.0
        scores[p] = -np.inf
        reseeded.append(int(c))
    return out, assign, md, cnt, reseeded
