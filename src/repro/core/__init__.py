"""k-means core: the paper's algorithms with exact numerics.

Everything in this package is *real* computation on NumPy arrays --
assignments, centroids, pruning decisions and their counts are the
genuine outputs of the genuine algorithms. The simulated-hardware layer
consumes the per-row statistics these kernels emit; it never influences
the math.

Contents
--------
* :mod:`repro.core.distance` -- Euclidean distance kernels.
* :mod:`repro.core.init` -- centroid initialization (random, Forgy,
  k-means++, scalable k-means||).
* :mod:`repro.core.centroids` -- per-thread accumulators and the
  funnel-style parallel merge of Algorithm 1.
* :mod:`repro.core.lloyd` -- serial Lloyd's (the reference).
* :mod:`repro.core.pll` -- one super-phase of ||Lloyd's (Algorithm 1),
  unpruned.
* :mod:`repro.core.mti` -- Minimal Triangle Inequality pruning
  (Section 4): O(n) upper bounds + O(k^2) centroid distances.
* :mod:`repro.core.elkan` -- full Elkan TI with the O(nk) lower-bound
  matrix (the baseline MTI is measured against).
* :mod:`repro.core.convergence` -- stopping criteria.
* :mod:`repro.core.workspace` -- per-iteration kernel workspace
  (cached centroid norms, reusable block buffers); pure optimization,
  bit-identical results.
"""

from repro.core.distance import (
    euclidean,
    pairwise_centroid_distances,
    nearest_centroid,
)
from repro.core.init import init_centroids
from repro.core.centroids import (
    AccumScratch,
    PartialCentroids,
    add_block,
    cluster_sums,
    flat_sums,
    funnel_merge,
    move_rows,
)
from repro.core.empty import (
    EMPTY_CLUSTER_POLICIES,
    check_empty_cluster_policy,
    reseed_empty_clusters,
)
from repro.core.workspace import DistanceWorkspace
from repro.core.lloyd import lloyd, LloydResult
from repro.core.pll import full_iteration, FullIterationResult
from repro.core.mti import (
    MtiState,
    mti_init,
    mti_iteration,
    MtiIterationResult,
)
from repro.core.elkan import (
    ElkanState,
    elkan_init,
    elkan_iteration,
    ElkanIterationResult,
)
from repro.core.convergence import ConvergenceCriteria

__all__ = [
    "euclidean",
    "pairwise_centroid_distances",
    "nearest_centroid",
    "init_centroids",
    "cluster_sums",
    "funnel_merge",
    "PartialCentroids",
    "AccumScratch",
    "DistanceWorkspace",
    "add_block",
    "flat_sums",
    "move_rows",
    "lloyd",
    "LloydResult",
    "full_iteration",
    "FullIterationResult",
    "MtiState",
    "mti_init",
    "mti_iteration",
    "MtiIterationResult",
    "ElkanState",
    "elkan_init",
    "elkan_iteration",
    "ElkanIterationResult",
    "ConvergenceCriteria",
    "EMPTY_CLUSTER_POLICIES",
    "check_empty_cluster_policy",
    "reseed_empty_clusters",
]
