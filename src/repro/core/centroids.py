"""Centroid accumulation: per-thread partials and the funnel merge.

Algorithm 1 gives every thread a private copy of the next iteration's
centroids (running sums + member counts) and merges them with a
"parallel funnelsort-like reduction" after the single global barrier.
:class:`PartialCentroids` is one thread's private structure;
:func:`funnel_merge` is the pairwise reduction tree. The tree is
deterministic (always merge neighbour pairs in index order) so results
are bit-reproducible for a fixed thread count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError


@dataclass
class PartialCentroids:
    """One thread's private centroid accumulator (``ptC`` in Alg. 1)."""

    sums: np.ndarray  # (k, d) float64 running totals
    counts: np.ndarray  # (k,) int64 membership counts

    @classmethod
    def zeros(cls, k: int, d: int) -> "PartialCentroids":
        return cls(
            sums=np.zeros((k, d), dtype=np.float64),
            counts=np.zeros(k, dtype=np.int64),
        )

    def accumulate(self, x: np.ndarray, assign: np.ndarray) -> None:
        """Add a block of rows to this thread's partial sums.

        Line 13 of Algorithm 1: ``ptC[tid][c_nearest] += v``, done
        blockwise with bincount for speed.
        """
        add_block(self.sums, self.counts, x, assign)

    def merge_from(self, other: "PartialCentroids") -> None:
        """Fold another partial into this one (one funnel step)."""
        if self.sums.shape != other.sums.shape:
            raise DatasetError(
                f"partial shape mismatch: {self.sums.shape} vs "
                f"{other.sums.shape}"
            )
        self.sums += other.sums
        self.counts += other.counts

    def finalize(self, previous: np.ndarray) -> np.ndarray:
        """Means of members; empty clusters keep their previous centroid.

        knor (like most robust implementations) leaves a centroid in
        place when no point chose it, rather than producing NaNs.
        """
        k = self.counts.shape[0]
        out = previous.copy()
        nonzero = self.counts > 0
        out[nonzero] = self.sums[nonzero] / self.counts[nonzero, None]
        if out.shape[0] != k:
            raise DatasetError("previous centroids shape mismatch")
        return out


def add_block(
    sums: np.ndarray,
    counts: np.ndarray,
    x: np.ndarray,
    assign: np.ndarray,
) -> None:
    """Accumulate rows of ``x`` into ``sums``/``counts`` by assignment.

    Implemented with one ``bincount`` per dimension: O(nd) with small
    constants, deterministic summation order.
    """
    k, d = sums.shape
    if x.shape[0] != assign.shape[0]:
        raise DatasetError("x and assign length mismatch")
    counts += np.bincount(assign, minlength=k).astype(np.int64)
    for dim in range(d):
        sums[:, dim] += np.bincount(assign, weights=x[:, dim], minlength=k)


def cluster_sums(
    x: np.ndarray, assign: np.ndarray, k: int
) -> PartialCentroids:
    """Sums and counts over the whole dataset in one shot."""
    partial = PartialCentroids.zeros(k, x.shape[1])
    partial.accumulate(x, assign)
    return partial


def funnel_merge(partials: list[PartialCentroids]) -> PartialCentroids:
    """Pairwise reduction tree over per-thread partials.

    ``MERGEPTSTRUCTS`` of Algorithm 1: while more than one structure
    remains, merge them in parallel pairs. The simulated cost of this
    tree is charged by :meth:`repro.simhw.CostModel.reduction_ns`; here
    we perform the arithmetic itself.
    """
    if not partials:
        raise DatasetError("funnel_merge needs at least one partial")
    level = list(partials)
    while len(level) > 1:
        nxt: list[PartialCentroids] = []
        for i in range(0, len(level) - 1, 2):
            level[i].merge_from(level[i + 1])
            nxt.append(level[i])
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]
