"""Centroid accumulation: per-thread partials and the funnel merge.

Algorithm 1 gives every thread a private copy of the next iteration's
centroids (running sums + member counts) and merges them with a
"parallel funnelsort-like reduction" after the single global barrier.
:class:`PartialCentroids` is one thread's private structure;
:func:`funnel_merge` is the pairwise reduction tree. The tree is
deterministic (always merge neighbour pairs in index order) so results
are bit-reproducible for a fixed thread count.

Accumulation uses **flat-index bincount**: one ``np.bincount`` over the
flattened ``(row, dim)`` index ``assign * d + dim`` instead of one
strided ``bincount`` per dimension. ``np.bincount`` adds weights
sequentially in input order, and the flat row-major order visits each
``(cluster, dim)`` bucket's contributions in exactly the same row order
as the per-dimension form did -- so the floating-point sums are
bit-identical (asserted by the golden-value suite), while the data is
read once, contiguously, instead of ``d`` strided passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.mem import MemoryManager, current_manager


class AccumScratch:
    """Growable reusable buffers for flat-index accumulation.

    Building the flat ``assign * d + dim`` index allocates an
    ``(n, d)`` int64 temporary per call; hot loops (MTI's incremental
    update runs every iteration) route through one of these to reuse
    that memory. Results are identical with or without scratch.

    Buffers are owned by a :class:`~repro.mem.MemoryManager` and grown
    through its ``ensure_capacity`` guard, so an arena recycles them
    across scratches and a budgeted manager counts them against its
    cap.
    """

    def __init__(self, *, mem: MemoryManager | None = None) -> None:
        self.mem = mem if mem is not None else current_manager()
        self._base: np.ndarray | None = None
        self._flat: np.ndarray | None = None
        self._dims: np.ndarray | None = None

    def flat_indices(self, assign: np.ndarray, d: int) -> np.ndarray:
        """``assign[i] * d + j`` flattened row-major, without fresh
        allocations once the buffers have grown to size."""
        m = assign.shape[0]
        need = m * d
        if self._dims is None or self._dims.size < d:
            self._dims = self.mem.ensure_capacity(
                self._dims, (d,), np.int64, tag="accum/dims"
            )
            self._dims[:d] = np.arange(d, dtype=np.int64)
        self._base = self.mem.ensure_capacity(
            self._base, (m,), np.int64, tag="accum/base"
        )
        self._flat = self.mem.ensure_capacity(
            self._flat, (need,), np.int64, tag="accum/flat"
        )
        base = self._base[:m]
        np.multiply(assign, d, out=base, dtype=np.int64)
        np.add(
            base[:, None],
            self._dims[:d],
            out=self._flat[:need].reshape(m, d),
        )
        return self._flat[:need]

    def release(self) -> None:
        """Return the index buffers to the owning manager."""
        for arr in (self._base, self._flat, self._dims):
            self.mem.free(arr)
        self._base = None
        self._flat = None
        self._dims = None


def _flat_indices(assign: np.ndarray, d: int) -> np.ndarray:
    """Allocation-per-call fallback for :meth:`AccumScratch.flat_indices`."""
    return (
        assign.astype(np.int64)[:, None]
        * d
        + np.arange(d, dtype=np.int64)
    ).ravel()


def flat_sums(
    x: np.ndarray,
    assign: np.ndarray,
    k: int,
    *,
    scratch: AccumScratch | None = None,
) -> np.ndarray:
    """Per-cluster ``(k, d)`` sums of rows via one flat-index bincount.

    Bit-identical to the per-dimension ``bincount`` loop it replaced:
    each ``(cluster, dim)`` bucket receives its contributions in the
    same ascending-row order.
    """
    d = x.shape[1]
    idx = (
        scratch.flat_indices(assign, d)
        if scratch is not None
        else _flat_indices(assign, d)
    )
    return np.bincount(
        idx, weights=x.ravel(), minlength=k * d
    ).reshape(k, d)


@dataclass
class PartialCentroids:
    """One thread's private centroid accumulator (``ptC`` in Alg. 1)."""

    sums: np.ndarray  # (k, d) float64 running totals
    counts: np.ndarray  # (k,) int64 membership counts

    @classmethod
    def zeros(
        cls, k: int, d: int, *, mem: MemoryManager | None = None
    ) -> "PartialCentroids":
        """Fresh zeroed accumulator; with ``mem``, its blocks come from
        (and should be returned to, via :meth:`release`) that manager.
        Without, plain numpy arrays -- callers that let partials escape
        (payloads, results) keep that default."""
        if mem is None:
            return cls(
                sums=np.zeros((k, d), dtype=np.float64),
                counts=np.zeros(k, dtype=np.int64),
            )
        return cls(
            sums=mem.alloc(
                (k, d), np.float64, tag="partials/sums", zero=True
            ),
            counts=mem.alloc(
                (k,), np.int64, tag="partials/counts", zero=True
            ),
        )

    def release(self, mem: MemoryManager) -> None:
        """Return manager-owned blocks after the funnel merge.

        Only valid for partials built with ``zeros(..., mem=...)``
        whose arrays did not escape: :func:`funnel_merge` never aliases
        its inputs into the merged result, so per-thread partials are
        safely releasable right after the merge."""
        mem.free(self.sums)
        mem.free(self.counts)

    def copy(self) -> "PartialCentroids":
        return PartialCentroids(
            sums=self.sums.copy(), counts=self.counts.copy()
        )

    def accumulate(
        self,
        x: np.ndarray,
        assign: np.ndarray,
        *,
        scratch: AccumScratch | None = None,
    ) -> None:
        """Add a block of rows to this thread's partial sums.

        Line 13 of Algorithm 1: ``ptC[tid][c_nearest] += v``, done
        blockwise with bincount for speed.
        """
        add_block(self.sums, self.counts, x, assign, scratch=scratch)

    def merge_from(self, other: "PartialCentroids") -> None:
        """Fold another partial into this one (one funnel step)."""
        if self.sums.shape != other.sums.shape:
            raise DatasetError(
                f"partial shape mismatch: {self.sums.shape} vs "
                f"{other.sums.shape}"
            )
        self.sums += other.sums
        self.counts += other.counts

    def finalize(self, previous: np.ndarray) -> np.ndarray:
        """Means of members; empty clusters keep their previous centroid.

        knor (like most robust implementations) leaves a centroid in
        place when no point chose it, rather than producing NaNs.
        """
        k = self.counts.shape[0]
        out = previous.copy()
        nonzero = self.counts > 0
        out[nonzero] = self.sums[nonzero] / self.counts[nonzero, None]
        if out.shape[0] != k:
            raise DatasetError("previous centroids shape mismatch")
        return out


def add_block(
    sums: np.ndarray,
    counts: np.ndarray,
    x: np.ndarray,
    assign: np.ndarray,
    *,
    scratch: AccumScratch | None = None,
) -> None:
    """Accumulate rows of ``x`` into ``sums``/``counts`` by assignment.

    One flat-index ``bincount`` over the whole block: O(nd) with one
    contiguous pass, deterministic per-bucket summation order.
    """
    k = sums.shape[0]
    if x.shape[0] != assign.shape[0]:
        raise DatasetError("x and assign length mismatch")
    counts += np.bincount(assign, minlength=k).astype(np.int64)
    sums += flat_sums(x, assign, k, scratch=scratch)


def move_rows(
    sums: np.ndarray,
    counts: np.ndarray,
    x: np.ndarray,
    frm: np.ndarray,
    to: np.ndarray,
    *,
    scratch: AccumScratch | None = None,
) -> None:
    """Move rows between clusters in persistent sums/counts.

    The incremental centroid update of MTI and Elkan: each row in ``x``
    leaves cluster ``frm[i]`` and joins ``to[i]``. Previously hand-
    rolled (and triplicated) as per-dimension bincount loops inside
    ``mti_init``/``mti_iteration``/``elkan_iteration``.
    """
    k = sums.shape[0]
    sums -= flat_sums(x, frm, k, scratch=scratch)
    sums += flat_sums(x, to, k, scratch=scratch)
    counts -= np.bincount(frm, minlength=k)
    counts += np.bincount(to, minlength=k)


def cluster_sums(
    x: np.ndarray,
    assign: np.ndarray,
    k: int,
    *,
    scratch: AccumScratch | None = None,
) -> PartialCentroids:
    """Sums and counts over the whole dataset in one shot."""
    partial = PartialCentroids.zeros(k, x.shape[1])
    partial.accumulate(x, assign, scratch=scratch)
    return partial


def funnel_merge(partials: list[PartialCentroids]) -> PartialCentroids:
    """Pairwise reduction tree over per-thread partials.

    ``MERGEPTSTRUCTS`` of Algorithm 1: while more than one structure
    remains, merge them in parallel pairs. The simulated cost of this
    tree is charged by :meth:`repro.simhw.CostModel.reduction_ns`; here
    we perform the arithmetic itself.

    The reduction never mutates its inputs: merge targets are fresh
    accumulators, so callers may keep using (or re-merging) their
    per-thread partials afterwards. The tree shape and per-pair
    summation order match the historical in-place version exactly, so
    the merged values are bit-identical.
    """
    if not partials:
        raise DatasetError("funnel_merge needs at least one partial")
    level = list(partials)
    # Whether level[i] is an accumulator this call owns (safe to mutate)
    # or one of the caller's input partials (must be left intact).
    owned = [False] * len(level)
    while len(level) > 1:
        nxt: list[PartialCentroids] = []
        nxt_owned: list[bool] = []
        for i in range(0, len(level) - 1, 2):
            target = level[i] if owned[i] else level[i].copy()
            target.merge_from(level[i + 1])
            nxt.append(target)
            nxt_owned.append(True)
        if len(level) % 2 == 1:
            nxt.append(level[-1])
            nxt_owned.append(owned[-1])
        level = nxt
        owned = nxt_owned
    return level[0] if owned[0] else level[0].copy()
