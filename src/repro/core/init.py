"""Centroid initialization.

knor exposes the standard initializations: ``random`` (sample k data
points without replacement -- also called Forgy in some texts), a
random-partition scheme, and k-means++. We add scalable k-means||
(Bahmani et al.) as a Section 9 extension since it is the
initialization large-scale deployments actually use.

All methods are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import euclidean, nearest_centroid
from repro.errors import ConvergenceError, DatasetError


def _check(x: np.ndarray, k: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"data must be 2-D, got shape {x.shape}")
    if k < 1:
        raise ConvergenceError(f"k must be >= 1, got {k}")
    if k > x.shape[0]:
        raise ConvergenceError(
            f"k={k} exceeds the number of data points n={x.shape[0]}"
        )
    return x


def random_sample(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Pick k distinct data points as the initial centroids."""
    idx = rng.choice(x.shape[0], size=k, replace=False)
    return x[np.sort(idx)].copy()


def random_partition(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign every point to a random cluster and take the means.

    Guarantees every cluster at least one member by seeding each with
    one distinct point before the random fill.
    """
    n, d = x.shape
    assign = rng.integers(0, k, size=n)
    seeds = rng.choice(n, size=k, replace=False)
    assign[seeds] = np.arange(k)
    sums = np.zeros((k, d))
    for dim in range(d):
        sums[:, dim] = np.bincount(assign, weights=x[:, dim], minlength=k)
    counts = np.bincount(assign, minlength=k)
    return sums / counts[:, None]


def kmeanspp(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ (Arthur & Vassilvitskii): D^2-weighted seeding."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = x[first]
    # Squared distance to the nearest chosen centroid so far.
    d2 = euclidean(x, centroids[:1])[:, 0] ** 2
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All remaining mass at distance zero (duplicate points):
            # fall back to uniform choice among the rest.
            idx = int(rng.integers(0, n))
        else:
            idx = int(rng.choice(n, p=d2 / total))
        centroids[j] = x[idx]
        new_d = euclidean(x, centroids[j : j + 1])[:, 0] ** 2
        np.minimum(d2, new_d, out=d2)
    return centroids


def kmeans_parallel(
    x: np.ndarray,
    k: int,
    rng: np.random.Generator,
    *,
    rounds: int = 5,
    oversample: float | None = None,
) -> np.ndarray:
    """Scalable k-means|| seeding (Bahmani et al., VLDB 2012).

    Oversamples ~``oversample`` candidates per round for ``rounds``
    rounds, then reclusters the weighted candidates down to k with
    k-means++. This is the initialization MLlib uses by default, so it
    also serves the framework comparators.
    """
    n = x.shape[0]
    ell = oversample if oversample is not None else 2.0 * k
    first = int(rng.integers(0, n))
    cand = [x[first]]
    d2 = euclidean(x, x[first : first + 1])[:, 0] ** 2
    for _ in range(rounds):
        total = d2.sum()
        if total <= 0:
            break
        probs = np.minimum(1.0, ell * d2 / total)
        picked = np.nonzero(rng.random(n) < probs)[0]
        if picked.size == 0:
            continue
        cand.extend(x[picked])
        new_d = euclidean(x, x[picked]).min(axis=1) ** 2
        np.minimum(d2, new_d, out=d2)
    cand_arr = np.unique(np.asarray(cand), axis=0)
    if cand_arr.shape[0] < k:
        # Rare on tiny inputs: top up with uniform samples.
        extra = rng.choice(n, size=k - cand_arr.shape[0], replace=False)
        cand_arr = np.vstack([cand_arr, x[extra]])
    # Weight candidates by how many points they own, then k-means++ on
    # the weighted candidate set (approximated by repeating the draw).
    assign, _ = nearest_centroid(x, cand_arr)
    weights = np.bincount(assign, minlength=cand_arr.shape[0]).astype(float)
    weights = np.maximum(weights, 1e-12)
    centroids = np.empty((k, x.shape[1]))
    probs = weights / weights.sum()
    centroids[0] = cand_arr[rng.choice(cand_arr.shape[0], p=probs)]
    cd2 = euclidean(cand_arr, centroids[:1])[:, 0] ** 2
    for j in range(1, k):
        w = cd2 * weights
        total = w.sum()
        if total <= 0:
            idx = int(rng.integers(0, cand_arr.shape[0]))
        else:
            idx = int(rng.choice(cand_arr.shape[0], p=w / total))
        centroids[j] = cand_arr[idx]
        new_d = euclidean(cand_arr, centroids[j : j + 1])[:, 0] ** 2
        np.minimum(cd2, new_d, out=cd2)
    return centroids


_METHODS = {
    "random": random_sample,
    "forgy": random_sample,  # alias: knor's "forgy" samples points
    "random_partition": random_partition,
    "kmeans++": kmeanspp,
    "kmeanspp": kmeanspp,
    "kmeans||": kmeans_parallel,
    "kmeans_parallel": kmeans_parallel,
}


def init_centroids(
    x: np.ndarray,
    k: int,
    method: str = "random",
    *,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Initialize k centroids with the named method.

    Parameters
    ----------
    method:
        One of ``random``/``forgy``, ``random_partition``,
        ``kmeans++``, ``kmeans||``.
    seed:
        Integer seed or a Generator; ``None`` draws fresh entropy.
    """
    x = _check(x, k)
    if method not in _METHODS:
        raise ConvergenceError(
            f"unknown init method {method!r}; choose from "
            f"{sorted(set(_METHODS))}"
        )
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    return np.ascontiguousarray(_METHODS[method](x, k, rng), dtype=np.float64)
