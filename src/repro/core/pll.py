"""One unpruned super-phase of ||Lloyd's (Algorithm 1).

The super-phase merges Lloyd's two phases: in a single pass each point
finds its nearest centroid *and* is accumulated into the executing
thread's private centroid copy. This module performs the exact numerics
of that pass for the whole dataset and reports the per-row statistics
the simulated-hardware engine needs (every row costs exactly ``k``
distance computations when pruning is off).

Per-thread accumulation is reproduced faithfully: the dataset is split
into the same per-thread partitions the engine schedules, each
partition accumulates into its own :class:`PartialCentroids`, and the
partials go through the funnel merge -- so the floating-point summation
order matches the parallel algorithm, not a single global sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.centroids import PartialCentroids, funnel_merge
from repro.core.distance import nearest_centroid
from repro.core.empty import (
    check_empty_cluster_policy,
    reseed_empty_clusters,
)
from repro.errors import DatasetError, EmptyClusterError
from repro.mem import current_manager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workspace import DistanceWorkspace


@dataclass
class FullIterationResult:
    """Exact outcome of one unpruned super-phase."""

    assignment: np.ndarray  # (n,) int32
    mindist: np.ndarray  # (n,) float64: distance to assigned centroid
    new_centroids: np.ndarray  # (k, d)
    n_changed: int
    dist_per_row: np.ndarray  # (n,) int32 -- always k here
    needs_data: np.ndarray  # (n,) bool -- always True here
    #: Cluster ids revived by the ``reseed`` empty-cluster policy this
    #: iteration (empty unless the policy fired).
    reseeded: tuple[int, ...] = ()


def full_iteration(
    x: np.ndarray,
    centroids: np.ndarray,
    prev_assignment: np.ndarray | None = None,
    *,
    n_partitions: int = 1,
    workspace: "DistanceWorkspace | None" = None,
    empty_cluster: str = "drop",
) -> FullIterationResult:
    """Run one super-phase with pruning disabled.

    Parameters
    ----------
    x, centroids:
        Data (n, d) and current centroids (k, d).
    prev_assignment:
        Last iteration's membership, for the changed-count; ``None``
        treats every point as changed (iteration 0).
    n_partitions:
        Number of per-thread partials to accumulate before the funnel
        merge (``T`` in Algorithm 1). Pure-numerics callers can leave
        it at 1; drivers pass the machine's thread count.
    workspace:
        Optional :class:`~repro.core.workspace.DistanceWorkspace`
        supplying cached centroid norms and reusable block buffers;
        results are bit-identical with or without it.
    empty_cluster:
        Policy when a cluster loses all members (see
        :mod:`repro.core.empty`): ``"drop"`` keeps the previous
        centroid (the historical behavior), ``"reseed"`` revives the
        cluster from the farthest point, ``"error"`` raises
        :class:`~repro.errors.EmptyClusterError`.
    """
    x = np.asarray(x, dtype=np.float64)
    k, d = centroids.shape
    n = x.shape[0]
    if n_partitions < 1:
        raise DatasetError(f"n_partitions must be >= 1, got {n_partitions}")
    check_empty_cluster_policy(empty_cluster)

    assign, mindist = nearest_centroid(x, centroids, workspace=workspace)

    # Per-thread accumulation, partitioned exactly as Figure 1 carves
    # the dataset, then the funnel merge of MERGEPTSTRUCTS.
    scratch = None if workspace is None else workspace.accum
    mem = workspace.mem if workspace is not None else current_manager()
    bounds = np.linspace(0, n, n_partitions + 1, dtype=int)
    partials = []
    for t in range(n_partitions):
        lo, hi = bounds[t], bounds[t + 1]
        p = PartialCentroids.zeros(k, d, mem=mem)
        if hi > lo:
            p.accumulate(x[lo:hi], assign[lo:hi], scratch=scratch)
        partials.append(p)
    merged = funnel_merge(partials)
    # funnel_merge never aliases its inputs into the merged result, so
    # the per-thread blocks go straight back to the pool.
    for p in partials:
        p.release(mem)
    new_centroids = merged.finalize(centroids)

    reseeded: list[int] = []
    if empty_cluster != "drop" and not (merged.counts > 0).all():
        empty = np.nonzero(merged.counts == 0)[0]
        if empty_cluster == "error":
            raise EmptyClusterError(
                f"clusters {empty.tolist()} lost all members "
                f"(empty_cluster='error')"
            )
        new_centroids, assign, mindist, _, reseeded = (
            reseed_empty_clusters(
                x, new_centroids, assign, mindist, merged.counts
            )
        )

    if prev_assignment is None:
        n_changed = n
    else:
        n_changed = int(np.count_nonzero(assign != prev_assignment))

    return FullIterationResult(
        assignment=assign,
        mindist=mindist,
        new_centroids=new_centroids,
        n_changed=n_changed,
        dist_per_row=np.full(n, k, dtype=np.int32),
        needs_data=np.ones(n, dtype=bool),
        reseeded=tuple(reseeded),
    )
