"""Serial Lloyd's algorithm -- the numerical reference.

This is the textbook two-phase routine every other implementation in
the library must agree with: Phase I assigns every point to its nearest
centroid; Phase II recomputes each centroid as the mean of its members.
It exists (a) as the baseline for Table 3 and (b) as the ground truth
the equivalence tests compare ||Lloyd's, MTI and Elkan against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.centroids import cluster_sums
from repro.core.convergence import ConvergenceCriteria
from repro.core.distance import nearest_centroid
from repro.core.empty import (
    check_empty_cluster_policy,
    reseed_empty_clusters,
)
from repro.core.init import init_centroids
from repro.core.workspace import DistanceWorkspace
from repro.errors import EmptyClusterError


@dataclass
class LloydResult:
    """Outcome of a serial Lloyd's run."""

    centroids: np.ndarray  # (k, d) final means
    assignment: np.ndarray  # (n,) int32 final membership
    iterations: int
    converged: bool
    #: Sum of squared distances of points to their assigned centroid
    #: (the k-means objective) at the final assignment.
    inertia: float
    #: Points that changed membership, per iteration.
    changed_history: list[int] = field(default_factory=list)

    @property
    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(
            self.assignment, minlength=self.centroids.shape[0]
        )


def lloyd(
    x: np.ndarray,
    k: int,
    *,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    empty_cluster: str = "drop",
    kernel: str = "blocked",
) -> LloydResult:
    """Cluster ``x`` into ``k`` clusters with serial Lloyd's.

    Parameters
    ----------
    init:
        Initialization method name (see :func:`init_centroids`) or an
        explicit (k, d) centroid array.
    criteria:
        Stopping rules; defaults to exact convergence capped at 100
        iterations.
    kernel:
        Distance kernel strategy (``"blocked"`` | ``"gemm"``, see
        :mod:`repro.core.distance`).
    empty_cluster:
        Policy when a cluster loses all members (see
        :mod:`repro.core.empty`): ``"drop"`` keeps the previous
        centroid, ``"reseed"`` revives it from the farthest point,
        ``"error"`` raises
        :class:`~repro.errors.EmptyClusterError`.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> blob = rng.normal(size=(100, 2))
    >>> x = np.vstack([blob, blob + 10.0])
    >>> res = lloyd(x, 2, seed=1)
    >>> res.converged
    True
    >>> sorted(res.cluster_sizes.tolist())
    [100, 100]
    """
    x = np.asarray(x, dtype=np.float64)
    crit = criteria or ConvergenceCriteria()
    check_empty_cluster_policy(empty_cluster)
    if isinstance(init, np.ndarray):
        centroids = np.array(init, dtype=np.float64, copy=True)
    else:
        centroids = init_centroids(x, k, init, seed=seed)
    if centroids.shape != (k, x.shape[1]):
        raise ValueError(
            f"init centroids shape {centroids.shape} != ({k}, {x.shape[1]})"
        )

    workspace = DistanceWorkspace(k, x.shape[1], kernel=kernel)
    assign = np.full(x.shape[0], -1, dtype=np.int32)
    mindist = np.zeros(x.shape[0])
    changed_history: list[int] = []
    converged = False
    iterations = 0
    for _ in range(crit.max_iters):
        iterations += 1
        new_assign, mindist = nearest_centroid(
            x, centroids, workspace=workspace
        )
        prev_assign = assign
        assign = new_assign
        partial = cluster_sums(x, assign, k, scratch=workspace.accum)
        prev = centroids
        centroids = partial.finalize(prev)
        if empty_cluster != "drop" and not (partial.counts > 0).all():
            empty = np.nonzero(partial.counts == 0)[0]
            if empty_cluster == "error":
                raise EmptyClusterError(
                    f"clusters {empty.tolist()} lost all members at "
                    f"iteration {iterations} (empty_cluster='error')"
                )
            centroids, assign, mindist, _, _ = reseed_empty_clusters(
                x, centroids, assign, mindist, partial.counts
            )
        n_changed = int(np.count_nonzero(assign != prev_assign))
        changed_history.append(n_changed)
        motion = np.sqrt(((centroids - prev) ** 2).sum(axis=1))
        if crit.converged(x.shape[0], n_changed, motion):
            converged = True
            break

    return LloydResult(
        centroids=centroids,
        assignment=assign,
        iterations=iterations,
        converged=converged,
        inertia=float((mindist**2).sum()),
        changed_history=changed_history,
    )
