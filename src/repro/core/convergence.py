"""Stopping criteria for iterative k-means runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ConvergenceCriteria:
    """When to stop iterating.

    The paper's runs stop when "the centroids no longer change from one
    iteration to the next" (equivalently: no point changes membership),
    bounded by a maximum iteration count for the benchmark sweeps.

    Parameters
    ----------
    max_iters:
        Hard iteration cap (``j`` in the paper's nomenclature).
    tol_changed_frac:
        Converged when the fraction of points that changed membership
        in an iteration is <= this value (0.0 = exact convergence).
    tol_centroid_motion:
        Additionally converged when the largest centroid displacement
        falls below this threshold (0.0 disables the check-by-motion).
    """

    max_iters: int = 100
    tol_changed_frac: float = 0.0
    tol_centroid_motion: float = 0.0

    def __post_init__(self) -> None:
        if self.max_iters < 1:
            raise ConfigError(f"max_iters must be >= 1, got {self.max_iters}")
        if not 0.0 <= self.tol_changed_frac < 1.0:
            raise ConfigError(
                f"tol_changed_frac must be in [0, 1), got "
                f"{self.tol_changed_frac}"
            )
        if self.tol_centroid_motion < 0:
            raise ConfigError("tol_centroid_motion must be >= 0")

    def converged(
        self,
        n: int,
        n_changed: int,
        motion: np.ndarray | None = None,
    ) -> bool:
        """Did this iteration reach the stopping condition?"""
        if n_changed <= self.tol_changed_frac * n:
            return True
        if (
            self.tol_centroid_motion > 0
            and motion is not None
            and float(np.max(motion)) <= self.tol_centroid_motion
        ):
            return True
        return False
