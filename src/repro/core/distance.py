"""Euclidean distance kernels.

One definition of distance is used across the whole library so every
algorithm (serial Lloyd's, ||Lloyd's, MTI, Elkan) sees *identical*
floating-point values -- that is what makes the exact-equivalence tests
between pruned and unpruned runs meaningful.

The kernel is the textbook expanded form
``d(x, c)^2 = |x|^2 - 2 x.c + |c|^2`` evaluated blockwise with a GEMM,
clamped at zero before the square root (the expansion can go slightly
negative for near-identical vectors).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

#: Rows per block for distance evaluation; bounds temporary memory at
#: roughly ``BLOCK_ROWS * k * 8`` bytes.
BLOCK_ROWS = 65536


def _as_matrix(a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise DatasetError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def euclidean(x: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``x`` and ``c``.

    Returns an ``(len(x), len(c))`` float64 matrix.
    """
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    if x.shape[1] != c.shape[1]:
        raise DatasetError(
            f"dimension mismatch: x has d={x.shape[1]}, c has d={c.shape[1]}"
        )
    x_sq = np.einsum("ij,ij->i", x, x)
    c_sq = np.einsum("ij,ij->i", c, c)
    sq = x_sq[:, None] - 2.0 * (x @ c.T) + c_sq[None, :]
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_centroid_distances(c: np.ndarray) -> np.ndarray:
    """The O(k^2) centroid-to-centroid distance matrix MTI maintains.

    Symmetric with a zero diagonal; MTI stores only a triangle in the
    real system, which the memory accounting reflects, but the full
    matrix is returned here for vectorized indexing.
    """
    return euclidean(c, c)


def half_min_inter_centroid(cc: np.ndarray) -> np.ndarray:
    """``s(c) = 0.5 * min_{c' != c} d(c, c')`` for every centroid.

    This is the clause-1 threshold (Elkan 2003, and Section 4 of the
    paper -- whose prose omits the 1/2 factor that correctness
    requires; the released knor code uses it).
    """
    k = cc.shape[0]
    if k == 1:
        # A single centroid has no neighbour; clause 1 always holds.
        return np.array([np.inf])
    masked = cc + np.where(np.eye(k, dtype=bool), np.inf, 0.0)
    return 0.5 * masked.min(axis=1)


def nearest_centroid(
    x: np.ndarray, c: np.ndarray, *, block_rows: int = BLOCK_ROWS
) -> tuple[np.ndarray, np.ndarray]:
    """Exact nearest centroid for every row (Phase I of Lloyd's).

    Returns ``(assignment int32, distance float64)``. Ties break toward
    the lowest centroid index (argmin semantics), consistently across
    all algorithms.
    """
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    n = x.shape[0]
    assign = np.empty(n, dtype=np.int32)
    mindist = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        dist = euclidean(x[start:stop], c)
        assign[start:stop] = np.argmin(dist, axis=1)
        mindist[start:stop] = dist[
            np.arange(stop - start), assign[start:stop]
        ]
    return assign, mindist


def rows_to_centroids(
    x: np.ndarray, c: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """Distance from each row ``x[i]`` to its *own* centroid ``c[idx[i]]``.

    The tightening step ``U(u)`` of MTI clause 3: one exact distance per
    row, not a full row-by-centroid matrix. Uses the same expanded form
    as :func:`euclidean` so the two paths agree to the last few ulps.
    """
    x = _as_matrix(x, "x")
    sel = c[idx]
    sq = (
        np.einsum("ij,ij->i", x, x)
        - 2.0 * np.einsum("ij,ij->i", x, sel)
        + np.einsum("ij,ij->i", sel, sel)
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)
