"""Euclidean distance kernels.

One definition of distance is used across the whole library so every
algorithm (serial Lloyd's, ||Lloyd's, MTI, Elkan) sees *identical*
floating-point values -- that is what makes the exact-equivalence tests
between pruned and unpruned runs meaningful.

The kernel is the textbook expanded form
``d(x, c)^2 = |x|^2 - 2 x.c + |c|^2`` evaluated blockwise with a GEMM,
clamped at zero before the square root (the expansion can go slightly
negative for near-identical vectors).

Every kernel accepts optional precomputed inputs and output buffers so
a per-iteration :class:`~repro.core.workspace.DistanceWorkspace` can
(a) compute the centroid norms ``|c|^2`` once per iteration instead of
once per call and (b) reuse one ``(BLOCK_ROWS, k)`` temporary across
blocks instead of reallocating it. Both paths produce bit-identical
values: ``-(2g)`` equals ``(-2)g`` exactly in IEEE-754, and float
addition is commutative, so the in-place evaluation order matches the
expression form to the last bit (asserted by the golden-value suite).

Kernel strategies
-----------------
:func:`nearest_centroid` offers two selectable strategies:

* ``"blocked"`` (default) -- the bit-identical reference: per block,
  the full distance expression ``sqrt(max(0, |x|^2 - 2g + |c|^2))`` is
  materialized over the whole ``(m, k)`` buffer before the argmin.
* ``"gemm"`` -- the communication-avoiding formulation: row norms
  ``|x|^2`` are computed once per data array (cached by the
  workspace across iterations), the GEMM consumes a pre-scaled
  ``(-2 C)^T`` so the ``*= -2`` pass disappears, and the argmin runs
  over ``q = -2 X C^T + |c|^2`` directly -- ``|x|^2`` is constant per
  row and ``sqrt`` is monotone, so neither changes the argmin. The
  clamp + sqrt then run only on the ``n`` winning entries instead of
  all ``n * k``, eliminating roughly half the full-matrix memory
  passes.

The two strategies are *ULP-equivalent*, not bit-identical: ``gemm``
adds ``|x|^2`` after ``|c|^2`` where ``blocked`` adds it before, and
one float reassociation perturbs the squared distance by a few ulps
of the ``|x|^2 + |c|^2`` magnitude (``GEMM_ULP_BOUND``). Assignments
agree everywhere except exact floating-point ties, which the
equivalence suite pins. Exact ties (duplicate centroids) produce
bitwise-equal candidates under both strategies, so argmin's
lowest-index rule picks the same centroid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError, DatasetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workspace import DistanceWorkspace

#: Rows per block for distance evaluation; bounds temporary memory at
#: roughly ``BLOCK_ROWS * k * 8`` bytes.
BLOCK_ROWS = 65536

#: Accepted values for the ``kernel`` strategy parameter.
KERNEL_STRATEGIES = ("blocked", "gemm")

#: Pinned bound on the squared-distance delta between the two kernel
#: strategies, in ulps of the ``|x|^2 + |c|^2`` magnitude the
#: reassociated addition rounds at (see the equivalence suite).
GEMM_ULP_BOUND = 4


def check_kernel(kernel: str) -> str:
    """Validate a ``kernel`` strategy argument and pass it through."""
    if kernel not in KERNEL_STRATEGIES:
        raise ConfigError(
            f"kernel must be one of {KERNEL_STRATEGIES}, got {kernel!r}"
        )
    return kernel


def row_norms(
    x: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Squared row norms ``|x_i|^2``, the shared norm helper.

    Each row's norm is an independent reduction over ``d``, so the
    values are bit-identical whether computed per block, on gathered
    rows, or over the whole array -- which is what lets the workspace
    cache them per data array and slice, and lets the serial GEMM
    baseline share this helper with the kernel strategy.
    """
    return np.einsum("ij,ij->i", x, x, out=out)


def _as_matrix(a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise DatasetError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def euclidean(
    x: np.ndarray,
    c: np.ndarray,
    *,
    c_sq: np.ndarray | None = None,
    out: np.ndarray | None = None,
    x_sq: np.ndarray | None = None,
) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``x`` and ``c``.

    Returns an ``(len(x), len(c))`` float64 matrix.

    ``c_sq`` supplies precomputed centroid norms ``|c|^2`` (a
    workspace computes them once per iteration); ``x_sq`` supplies
    precomputed row norms ``|x|^2`` (per-row reductions, so gathered
    or cached norms are bit-identical to inline ones); ``out``
    supplies a preallocated ``(len(x), len(c))`` float64 result
    buffer. All three are pure optimizations -- the returned values
    are bit-identical either way.
    """
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    if x.shape[1] != c.shape[1]:
        raise DatasetError(
            f"dimension mismatch: x has d={x.shape[1]}, c has d={c.shape[1]}"
        )
    if x_sq is None:
        x_sq = row_norms(x)
    if c_sq is None:
        c_sq = row_norms(c)
    if out is None:
        sq = x_sq[:, None] - 2.0 * (x @ c.T) + c_sq[None, :]
    else:
        # Same arithmetic in place: x_sq + (-2)*g + c_sq.
        sq = np.matmul(x, c.T, out=out)
        sq *= -2.0
        sq += x_sq[:, None]
        sq += c_sq[None, :]
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_centroid_distances(
    c: np.ndarray,
    *,
    c_sq: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The O(k^2) centroid-to-centroid distance matrix MTI maintains.

    Symmetric with a zero diagonal; MTI stores only a triangle in the
    real system, which the memory accounting reflects, but the full
    matrix is returned here for vectorized indexing.
    """
    return euclidean(c, c, c_sq=c_sq, out=out)


def half_min_inter_centroid(
    cc: np.ndarray,
    *,
    scratch: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``s(c) = 0.5 * min_{c' != c} d(c, c')`` for every centroid.

    This is the clause-1 threshold (Elkan 2003, and Section 4 of the
    paper -- whose prose omits the 1/2 factor that correctness
    requires; the released knor code uses it).

    The diagonal is excluded by writing ``inf`` into a copy of ``cc``
    (``scratch`` reuses one preallocated k x k buffer) rather than
    materializing a fresh ``np.eye`` boolean mask every iteration; the
    off-diagonal values are untouched, so the minima are bit-identical
    to the historical masked-add form.
    """
    k = cc.shape[0]
    if k == 1:
        # A single centroid has no neighbour; clause 1 always holds.
        return np.array([np.inf])
    masked = np.empty_like(cc) if scratch is None else scratch
    np.copyto(masked, cc)
    np.fill_diagonal(masked, np.inf)
    if out is None:
        return 0.5 * masked.min(axis=1)
    masked.min(axis=1, out=out)
    out *= 0.5
    return out


def _nearest_centroid_gemm(
    x: np.ndarray,
    c: np.ndarray,
    c_sq: np.ndarray,
    x_sq: np.ndarray,
    neg2ct: np.ndarray,
    block_rows: int,
    workspace: "DistanceWorkspace | None",
) -> tuple[np.ndarray, np.ndarray]:
    """The ``"gemm"`` assignment pass over ``q = -2 X C^T + |c|^2``.

    Per block: one GEMM against the pre-scaled ``(-2 C)^T``, one
    ``|c|^2`` broadcast-add, one argmin -- then clamp + sqrt only on
    the ``m`` winners (O(m) instead of O(m * k) post-processing).
    """
    n = x.shape[0]
    assign = np.empty(n, dtype=np.int32)
    mindist = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        m = stop - start
        out = None if workspace is None else workspace.dist_buffer(m)
        q = np.matmul(x[start:stop], neg2ct, out=out)
        q += c_sq[None, :]
        a = np.argmin(q, axis=1).astype(np.int32, copy=False)
        assign[start:stop] = a
        sq = q[np.arange(m), a] + x_sq[start:stop]
        np.maximum(sq, 0.0, out=sq)
        mindist[start:stop] = np.sqrt(sq, out=sq)
    return assign, mindist


def nearest_centroid(
    x: np.ndarray,
    c: np.ndarray,
    *,
    block_rows: int = BLOCK_ROWS,
    workspace: "DistanceWorkspace | None" = None,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact nearest centroid for every row (Phase I of Lloyd's).

    Returns ``(assignment int32, distance float64)``. Ties break toward
    the lowest centroid index (argmin semantics), consistently across
    all algorithms.

    With a ``workspace``, centroid norms come from the per-iteration
    cache and every block writes into one preallocated distance buffer
    instead of reallocating ``(block_rows, k)`` temporaries.

    ``kernel`` selects the strategy (module docstring): ``"blocked"``
    is the bit-identical reference, ``"gemm"`` the ULP-equivalent fast
    path. ``None`` defers to the workspace's configured strategy (or
    ``"blocked"`` without one).
    """
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    n = x.shape[0]
    if kernel is None:
        kernel = "blocked" if workspace is None else workspace.kernel
    check_kernel(kernel)
    c_sq = None
    if workspace is not None:
        c = workspace.ensure(c)
        c_sq = workspace.c_sq
    if kernel == "gemm":
        if c_sq is None:
            c_sq = row_norms(c)
        if workspace is not None:
            x_sq = workspace.x_sq(x)
            neg2ct = workspace.neg2ct
        else:
            x_sq = row_norms(x)
            # Scaling by -2 is exact in IEEE-754 and the .T view keeps
            # the BLAS layout identical to ``x @ c.T``, so the GEMM
            # output equals ``-2 * (x @ c.T)`` to the last bit.
            neg2ct = (c * -2.0).T
        return _nearest_centroid_gemm(
            x, c, c_sq, x_sq, neg2ct, block_rows, workspace
        )
    assign = np.empty(n, dtype=np.int32)
    mindist = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        m = stop - start
        out = None if workspace is None else workspace.dist_buffer(m)
        dist = euclidean(x[start:stop], c, c_sq=c_sq, out=out)
        assign[start:stop] = np.argmin(dist, axis=1)
        mindist[start:stop] = dist[
            np.arange(m), assign[start:stop]
        ]
    return assign, mindist


def rows_to_centroids(
    x: np.ndarray,
    c: np.ndarray,
    idx: np.ndarray,
    *,
    c_sq: np.ndarray | None = None,
    x_sq: np.ndarray | None = None,
) -> np.ndarray:
    """Distance from each row ``x[i]`` to its *own* centroid ``c[idx[i]]``.

    The tightening step ``U(u)`` of MTI clause 3: one exact distance per
    row, not a full row-by-centroid matrix. Uses the same expanded form
    as :func:`euclidean` so the two paths agree to the last few ulps.

    ``c_sq`` supplies precomputed centroid norms; gathering
    ``c_sq[idx]`` is bit-identical to re-deriving the norms from the
    gathered rows (each row's norm is an independent reduction).
    ``x_sq`` does the same for the row norms (the gemm kernel strategy
    feeds the workspace's per-array cache through here).
    """
    x = _as_matrix(x, "x")
    sel = c[idx]
    sel_sq = row_norms(sel) if c_sq is None else c_sq[idx]
    if x_sq is None:
        x_sq = row_norms(x)
    sq = (
        x_sq
        - 2.0 * np.einsum("ij,ij->i", x, sel)
        + sel_sq
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)
