"""Euclidean distance kernels.

One definition of distance is used across the whole library so every
algorithm (serial Lloyd's, ||Lloyd's, MTI, Elkan) sees *identical*
floating-point values -- that is what makes the exact-equivalence tests
between pruned and unpruned runs meaningful.

The kernel is the textbook expanded form
``d(x, c)^2 = |x|^2 - 2 x.c + |c|^2`` evaluated blockwise with a GEMM,
clamped at zero before the square root (the expansion can go slightly
negative for near-identical vectors).

Every kernel accepts optional precomputed inputs and output buffers so
a per-iteration :class:`~repro.core.workspace.DistanceWorkspace` can
(a) compute the centroid norms ``|c|^2`` once per iteration instead of
once per call and (b) reuse one ``(BLOCK_ROWS, k)`` temporary across
blocks instead of reallocating it. Both paths produce bit-identical
values: ``-(2g)`` equals ``(-2)g`` exactly in IEEE-754, and float
addition is commutative, so the in-place evaluation order matches the
expression form to the last bit (asserted by the golden-value suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workspace import DistanceWorkspace

#: Rows per block for distance evaluation; bounds temporary memory at
#: roughly ``BLOCK_ROWS * k * 8`` bytes.
BLOCK_ROWS = 65536


def _as_matrix(a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise DatasetError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def euclidean(
    x: np.ndarray,
    c: np.ndarray,
    *,
    c_sq: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``x`` and ``c``.

    Returns an ``(len(x), len(c))`` float64 matrix.

    ``c_sq`` supplies precomputed centroid norms ``|c|^2`` (a
    workspace computes them once per iteration); ``out`` supplies a
    preallocated ``(len(x), len(c))`` float64 result buffer. Both are
    pure optimizations -- the returned values are bit-identical either
    way.
    """
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    if x.shape[1] != c.shape[1]:
        raise DatasetError(
            f"dimension mismatch: x has d={x.shape[1]}, c has d={c.shape[1]}"
        )
    x_sq = np.einsum("ij,ij->i", x, x)
    if c_sq is None:
        c_sq = np.einsum("ij,ij->i", c, c)
    if out is None:
        sq = x_sq[:, None] - 2.0 * (x @ c.T) + c_sq[None, :]
    else:
        # Same arithmetic in place: x_sq + (-2)*g + c_sq.
        sq = np.matmul(x, c.T, out=out)
        sq *= -2.0
        sq += x_sq[:, None]
        sq += c_sq[None, :]
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_centroid_distances(
    c: np.ndarray,
    *,
    c_sq: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The O(k^2) centroid-to-centroid distance matrix MTI maintains.

    Symmetric with a zero diagonal; MTI stores only a triangle in the
    real system, which the memory accounting reflects, but the full
    matrix is returned here for vectorized indexing.
    """
    return euclidean(c, c, c_sq=c_sq, out=out)


def half_min_inter_centroid(
    cc: np.ndarray,
    *,
    scratch: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``s(c) = 0.5 * min_{c' != c} d(c, c')`` for every centroid.

    This is the clause-1 threshold (Elkan 2003, and Section 4 of the
    paper -- whose prose omits the 1/2 factor that correctness
    requires; the released knor code uses it).

    The diagonal is excluded by writing ``inf`` into a copy of ``cc``
    (``scratch`` reuses one preallocated k x k buffer) rather than
    materializing a fresh ``np.eye`` boolean mask every iteration; the
    off-diagonal values are untouched, so the minima are bit-identical
    to the historical masked-add form.
    """
    k = cc.shape[0]
    if k == 1:
        # A single centroid has no neighbour; clause 1 always holds.
        return np.array([np.inf])
    masked = np.empty_like(cc) if scratch is None else scratch
    np.copyto(masked, cc)
    np.fill_diagonal(masked, np.inf)
    if out is None:
        return 0.5 * masked.min(axis=1)
    masked.min(axis=1, out=out)
    out *= 0.5
    return out


def nearest_centroid(
    x: np.ndarray,
    c: np.ndarray,
    *,
    block_rows: int = BLOCK_ROWS,
    workspace: "DistanceWorkspace | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact nearest centroid for every row (Phase I of Lloyd's).

    Returns ``(assignment int32, distance float64)``. Ties break toward
    the lowest centroid index (argmin semantics), consistently across
    all algorithms.

    With a ``workspace``, centroid norms come from the per-iteration
    cache and every block writes into one preallocated distance buffer
    instead of reallocating ``(block_rows, k)`` temporaries.
    """
    x = _as_matrix(x, "x")
    c = _as_matrix(c, "c")
    n = x.shape[0]
    c_sq = None
    if workspace is not None:
        c = workspace.ensure(c)
        c_sq = workspace.c_sq
    assign = np.empty(n, dtype=np.int32)
    mindist = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        m = stop - start
        out = None if workspace is None else workspace.dist_buffer(m)
        dist = euclidean(x[start:stop], c, c_sq=c_sq, out=out)
        assign[start:stop] = np.argmin(dist, axis=1)
        mindist[start:stop] = dist[
            np.arange(m), assign[start:stop]
        ]
    return assign, mindist


def rows_to_centroids(
    x: np.ndarray,
    c: np.ndarray,
    idx: np.ndarray,
    *,
    c_sq: np.ndarray | None = None,
) -> np.ndarray:
    """Distance from each row ``x[i]`` to its *own* centroid ``c[idx[i]]``.

    The tightening step ``U(u)`` of MTI clause 3: one exact distance per
    row, not a full row-by-centroid matrix. Uses the same expanded form
    as :func:`euclidean` so the two paths agree to the last few ulps.

    ``c_sq`` supplies precomputed centroid norms; gathering
    ``c_sq[idx]`` is bit-identical to re-deriving the norms from the
    gathered rows (each row's norm is an independent reduction).
    """
    x = _as_matrix(x, "x")
    sel = c[idx]
    sel_sq = (
        np.einsum("ij,ij->i", sel, sel) if c_sq is None else c_sq[idx]
    )
    sq = (
        np.einsum("ij,ij->i", x, x)
        - 2.0 * np.einsum("ij,ij->i", x, sel)
        + sel_sq
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)
