"""Full Elkan triangle-inequality k-means (ICML 2003).

The baseline MTI is measured against: Elkan's algorithm keeps, in
addition to the per-point upper bound, a dense **lower-bound matrix**
``lb`` of shape (n, k) -- a lower bound on the distance from every
point to every centroid. The extra bounds prune more distance
computations than MTI, at an O(nk) memory cost that the paper's whole
argument (Table 1, Section 4) is about avoiding: at n = 1B, k = 100
the matrix alone is 800 GB.

The centroid loop is evaluated column-by-column with the upper bound
updating as assignments improve, matching Elkan's sequential
formulation, so pruning counts are faithful rather than a vectorized
over-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.centroids import flat_sums, move_rows
from repro.core.distance import (
    euclidean,
    half_min_inter_centroid,
    pairwise_centroid_distances,
    rows_to_centroids,
)
from repro.errors import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workspace import DistanceWorkspace


@dataclass
class ElkanState:
    """Persistent O(nk) state across iterations."""

    assignment: np.ndarray  # (n,) int32
    ub: np.ndarray  # (n,) float64
    lb: np.ndarray  # (n, k) float64 lower bounds
    sums: np.ndarray  # (k, d)
    counts: np.ndarray  # (k,)

    @property
    def n(self) -> int:
        return self.assignment.shape[0]


@dataclass
class ElkanIterationResult:
    """Outcome and pruning statistics of one Elkan iteration.

    The pruning breakdown uses the same field names as
    :class:`~repro.core.mti.MtiIterationResult` so drivers can consume
    either result uniformly: Elkan evaluates its bounds per
    point-centroid pair with the tightened upper bound, which maps to
    MTI's clause-3 position (``clause2_pruned`` stays 0 -- Elkan has
    no separate loose-bound pass).
    """

    new_centroids: np.ndarray
    n_changed: int
    dist_per_row: np.ndarray
    needs_data: np.ndarray
    motion: np.ndarray
    clause1_rows: int = 0
    clause2_pruned: int = 0
    clause3_pruned: int = 0
    tightened_rows: int = 0
    computed: int = 0

    @property
    def pruned_pairs(self) -> int:
        """Backward-compatible alias for :attr:`clause3_pruned`."""
        return self.clause3_pruned


def elkan_init(
    x: np.ndarray,
    centroids: np.ndarray,
    *,
    workspace: "DistanceWorkspace | None" = None,
) -> tuple[ElkanState, ElkanIterationResult]:
    """Iteration 0: full distance matrix seeds ub, lb and assignments."""
    x = np.asarray(x, dtype=np.float64)
    k, d = centroids.shape
    n = x.shape[0]
    c_sq = None
    x_sq = None
    if workspace is not None:
        centroids = workspace.ensure(centroids)
        c_sq = workspace.c_sq
        if workspace.kernel == "gemm":
            x_sq = workspace.x_sq(x)
    # The full matrix becomes the persistent lb state, so it is
    # allocated fresh rather than drawn from the workspace buffer.
    dist = euclidean(x, centroids, c_sq=c_sq, x_sq=x_sq)
    assign = np.argmin(dist, axis=1).astype(np.int32)
    ub = dist[np.arange(n), assign].copy()
    sums = flat_sums(
        x, assign, k,
        scratch=None if workspace is None else workspace.accum,
    )
    counts = np.bincount(assign, minlength=k).astype(np.int64)
    state = ElkanState(
        assignment=assign, ub=ub, lb=dist, sums=sums, counts=counts
    )
    new_centroids = centroids.copy()
    nonzero = counts > 0
    new_centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
    result = ElkanIterationResult(
        new_centroids=new_centroids,
        n_changed=n,
        dist_per_row=np.full(n, k, dtype=np.int32),
        needs_data=np.ones(n, dtype=bool),
        motion=np.zeros(k),
        computed=n * k,
    )
    return state, result


def elkan_iteration(
    x: np.ndarray,
    centroids: np.ndarray,
    prev_centroids: np.ndarray,
    state: ElkanState,
    *,
    workspace: "DistanceWorkspace | None" = None,
) -> ElkanIterationResult:
    """One Elkan-pruned iteration; mutates ``state`` in place."""
    x = np.asarray(x, dtype=np.float64)
    n, d = x.shape
    k = centroids.shape[0]
    if state.n != n:
        raise DatasetError(f"state tracks {state.n} rows but data has {n}")

    motion = rows_to_centroids(centroids, prev_centroids, np.arange(k))
    state.ub += motion[state.assignment]
    np.maximum(state.lb - motion[None, :], 0.0, out=state.lb)

    c_sq = None
    x_sq_full = None
    if workspace is not None:
        centroids = workspace.ensure(centroids)
        c_sq = workspace.c_sq
        cc = workspace.pairwise()
        s = workspace.half_min()
        if workspace.kernel == "gemm":
            # Cached per-array row norms feed the per-centroid column
            # passes; gathered norms are bit-identical to inline ones.
            x_sq_full = workspace.x_sq(x)
    else:
        cc = pairwise_centroid_distances(centroids)
        s = half_min_inter_centroid(cc)

    assign = state.assignment
    old_assign = assign.copy()

    clause1 = state.ub <= s[assign]
    active_idx = np.nonzero(~clause1)[0]

    dist_per_row = np.zeros(n, dtype=np.int32)
    needs_data = np.zeros(n, dtype=bool)
    needs_data[active_idx] = True

    pruned_pairs = 0
    computed = 0
    n_tightened = 0

    if active_idx.size:
        m = active_idx.size
        xa = x[active_idx]
        ba = assign[active_idx].copy()
        ua = state.ub[active_idx].copy()
        lba = state.lb[active_idx]
        tight = np.zeros(m, dtype=bool)  # is ua the exact distance?

        for c in range(k):
            half = 0.5 * cc[ba, c]
            cand = (
                (ba != c)
                & (ua > lba[:, c])
                & (ua > half)
            )
            if not cand.any():
                pruned_pairs += int((ba != c).sum())
                continue
            pruned_pairs += int((ba != c).sum() - cand.sum())
            # Tighten u for candidate rows not yet tightened.
            need_tight = cand & ~tight
            nt = np.nonzero(need_tight)[0]
            if nt.size:
                ua[nt] = rows_to_centroids(
                    xa[nt], centroids, ba[nt], c_sq=c_sq,
                    x_sq=(
                        None if x_sq_full is None
                        else x_sq_full[active_idx[nt]]
                    ),
                )
                lba[nt, ba[nt]] = ua[nt]
                tight[nt] = True
                n_tightened += int(nt.size)
                computed += int(nt.size)
                dist_per_row[active_idx[nt]] += 1
            # Re-test with the tightened bound.
            cand &= (ua > lba[:, c]) & (ua > 0.5 * cc[ba, c])
            ci = np.nonzero(cand)[0]
            if ci.size == 0:
                continue
            dist_c = rows_to_centroids(
                xa[ci], centroids, np.full(ci.size, c), c_sq=c_sq,
                x_sq=(
                    None if x_sq_full is None
                    else x_sq_full[active_idx[ci]]
                ),
            )
            computed += int(ci.size)
            dist_per_row[active_idx[ci]] += 1
            lba[ci, c] = dist_c
            better = dist_c < ua[ci]
            bi = ci[better]
            if bi.size:
                ba[bi] = c
                ua[bi] = dist_c[better]
                # The new assignment's distance is exact.
                tight[bi] = True

        assign[active_idx] = ba
        state.ub[active_idx] = ua
        # Fancy indexing copied the rows; write the updated bounds back.
        state.lb[active_idx] = lba

    changed = np.nonzero(assign != old_assign)[0]
    n_changed = int(changed.size)
    if n_changed:
        move_rows(
            state.sums, state.counts,
            x[changed], old_assign[changed], assign[changed],
            scratch=None if workspace is None else workspace.accum,
        )

    new_centroids = centroids.copy()
    nonzero = state.counts > 0
    new_centroids[nonzero] = state.sums[nonzero] / state.counts[nonzero, None]

    return ElkanIterationResult(
        new_centroids=new_centroids,
        n_changed=n_changed,
        dist_per_row=dist_per_row,
        needs_data=needs_data,
        motion=motion,
        clause1_rows=int(clause1.sum()),
        clause3_pruned=pruned_pairs,
        tightened_rows=n_tightened,
        computed=computed,
    )
