"""Per-iteration kernel workspace: cached norms and reusable buffers.

The distance kernels are called many times per k-means iteration with
the *same* centroid matrix -- once per data block in Phase I, once per
tighten/candidate pass in MTI and Elkan -- yet historically every call
re-derived the centroid norms ``|c|^2`` and allocated a fresh
``(block_rows, k)`` temporary. A :class:`DistanceWorkspace` hoists that
per-iteration-constant work out of the hot loop:

* ``|c|^2`` is computed once per centroid set (:meth:`ensure`);
* the pairwise centroid matrix and the clause-1 thresholds are
  computed at most once per centroid set (:meth:`pairwise`,
  :meth:`half_min`);
* one distance buffer and one k x k scratch are preallocated and
  reused across blocks and iterations (:meth:`dist_buffer`);
* an :class:`~repro.core.centroids.AccumScratch` carries the reusable
  flat-index buffers for centroid accumulation.

The workspace changes *when* quantities are computed, never *what* is
computed: every cached value is produced by the exact same kernel
expressions, so results are bit-identical with or without a workspace
(the golden-value suite asserts ``np.array_equal``).

Cache invalidation is by array identity: a new centroid array object
triggers recomputation. The library produces a fresh centroid array
every iteration; callers must not mutate a centroid matrix in place
between kernel calls that share a workspace.

The workspace also carries the selected **kernel strategy**
(``kernel="blocked" | "gemm"``, see :mod:`repro.core.distance`): under
``"gemm"`` it additionally caches the pre-scaled ``(-2 C)^T`` per
centroid set and the squared row norms ``|x|^2`` per data array
(:meth:`x_sq`), so a shard's norms are computed once for the whole
run rather than once per assignment pass.

Every buffer is owned by a :class:`~repro.mem.MemoryManager` (the
current manager at construction unless one is passed), so arenas can
reuse the blocks across workspaces and the budgeted manager can cap
and spill them. The ``|x|^2`` cache holds **weak** references to the
data arrays it has seen: an entry dies with its array (freeing the
manager-owned norms) instead of pinning live data the way the old
strong-ref FIFO did.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.centroids import AccumScratch
from repro.core.distance import (
    BLOCK_ROWS,
    check_kernel,
    euclidean,
    half_min_inter_centroid,
    row_norms,
)
from repro.errors import DatasetError
from repro.mem import MemoryManager, current_manager

#: Data arrays whose row norms one workspace keeps alive at once. One
#: slot serves the batch drivers (one shard per loop); a few extra
#: keep the serve plane's rotating query batches from thrashing the
#: resident shard's entry.
X_SQ_CACHE_SLOTS = 4


class DistanceWorkspace:
    """Reusable kernel state for one ``(k, d)`` clustering problem."""

    def __init__(
        self,
        k: int,
        d: int,
        *,
        block_rows: int = BLOCK_ROWS,
        kernel: str = "blocked",
        mem: MemoryManager | None = None,
    ) -> None:
        if k < 1 or d < 1:
            raise DatasetError(
                f"workspace needs k >= 1 and d >= 1, got k={k}, d={d}"
            )
        self.k = k
        self.d = d
        self.block_rows = block_rows
        self.kernel = check_kernel(kernel)
        self.mem = mem if mem is not None else current_manager()
        self.accum = AccumScratch(mem=self.mem)
        self._centroids: np.ndarray | None = None
        self._c_sq = self.mem.alloc(
            (k,), np.float64, tag="workspace/c_sq"
        )
        self._cc = self.mem.alloc(
            (k, k), np.float64, tag="workspace/cc"
        )
        self._cc_scratch = self.mem.alloc(
            (k, k), np.float64, tag="workspace/cc_scratch"
        )
        self._s = self.mem.alloc((k,), np.float64, tag="workspace/s")
        self._have_cc = False
        self._have_s = False
        self._neg2ct: np.ndarray | None = None
        self._neg2ct_base: np.ndarray | None = None
        self._dist_buf: np.ndarray | None = None
        # id(x) -> (weakref(x), |x|^2). The weak reference keeps the id
        # valid while the entry lives *without* pinning the data array:
        # when x dies, the finalizer drops the entry and frees its
        # manager-owned norms (the old strong-ref FIFO pinned every
        # array it had seen until eviction).
        self._x_sq_cache: dict[
            int, tuple[weakref.ref, np.ndarray]
        ] = {}

    # -- centroid-set cache ------------------------------------------

    def ensure(self, centroids: np.ndarray) -> np.ndarray:
        """Bind the workspace to ``centroids``, refreshing caches.

        Returns the float64 view of the centroid matrix. A repeated
        call with the same array object is free; a new object
        recomputes ``|c|^2`` and invalidates the pairwise/threshold
        caches.
        """
        c = np.asarray(centroids, dtype=np.float64)
        if c is self._centroids:
            return c
        if c.shape != (self.k, self.d):
            raise DatasetError(
                f"centroids shape {c.shape} does not match workspace "
                f"({self.k}, {self.d})"
            )
        row_norms(c, out=self._c_sq)
        self._centroids = c
        self._have_cc = False
        self._have_s = False
        if self._neg2ct_base is not None:
            self.mem.free(self._neg2ct_base)
            self._neg2ct_base = None
        self._neg2ct = None
        return c

    def _require_centroids(self) -> np.ndarray:
        if self._centroids is None:
            raise DatasetError(
                "workspace has no centroid set; call ensure() first"
            )
        return self._centroids

    @property
    def c_sq(self) -> np.ndarray:
        """Cached centroid norms ``|c|^2`` for the bound centroid set."""
        self._require_centroids()
        return self._c_sq

    def pairwise(self) -> np.ndarray:
        """Cached centroid-to-centroid distance matrix (O(k^2))."""
        c = self._require_centroids()
        if not self._have_cc:
            euclidean(c, c, c_sq=self._c_sq, out=self._cc)
            self._have_cc = True
        return self._cc

    def half_min(self) -> np.ndarray:
        """Cached clause-1 thresholds ``0.5 * min_{c' != c} d(c, c')``."""
        if not self._have_s:
            self._s = half_min_inter_centroid(
                self.pairwise(), scratch=self._cc_scratch, out=self._s
            )
            self._have_s = True
        return self._s

    @property
    def neg2ct(self) -> np.ndarray:
        """Cached pre-scaled centroid transpose ``(-2 C)^T`` (d, k).

        The gemm strategy's GEMM operand: scaling by -2 is exact in
        IEEE-754 and the ``.T`` view preserves the BLAS memory layout
        of ``c.T``, so ``x @ neg2ct`` is bit-identical to
        ``-2 * (x @ c.T)`` while skipping the separate ``*= -2`` pass
        over the ``(m, k)`` buffer.
        """
        c = self._require_centroids()
        if self._neg2ct is None:
            base = self.mem.alloc(
                (self.k, self.d), np.float64, tag="workspace/neg2ct"
            )
            np.multiply(c, -2.0, out=base)
            self._neg2ct_base = base
            self._neg2ct = base.T
        return self._neg2ct

    # -- per-data-array cache -----------------------------------------

    def _drop_x_sq(self, key: int) -> None:
        hit = self._x_sq_cache.pop(key, None)
        if hit is not None:
            self.mem.free(hit[1])

    def invalidate_x_sq(self) -> None:
        """Drop every cached ``|x|^2`` entry, freeing the norms."""
        for key in list(self._x_sq_cache):
            self._drop_x_sq(key)

    def x_sq(self, x: np.ndarray) -> np.ndarray:
        """Cached squared row norms ``|x|^2``, keyed by array identity.

        A batch driver calls this with the same shard array every
        iteration, so the norms are computed once per run. Entries hold
        weak references: a dead data array's entry is reclaimed by its
        finalizer (its id can then be safely reused), and the cache is
        additionally capped at :data:`X_SQ_CACHE_SLOTS` entries,
        evicting oldest-first, so the serve plane's per-batch gather
        arrays can never grow it without bound.
        """
        key = id(x)
        hit = self._x_sq_cache.get(key)
        if hit is not None:
            if hit[0]() is x:
                self.mem.touch(hit[1])
                return hit[1]
            self._drop_x_sq(key)
        norms = self.mem.alloc(
            (x.shape[0],), np.float64, tag="workspace/x_sq"
        )
        row_norms(x, out=norms)
        if len(self._x_sq_cache) >= X_SQ_CACHE_SLOTS:
            self._drop_x_sq(next(iter(self._x_sq_cache)))
        wself = weakref.ref(self)

        def _finalize(_ref, _key=key, _wself=wself):
            ws = _wself()
            if ws is not None:
                ws._drop_x_sq(_key)

        self._x_sq_cache[key] = (weakref.ref(x, _finalize), norms)
        return norms

    # -- block buffers ------------------------------------------------

    def dist_buffer(self, m: int) -> np.ndarray:
        """A reusable ``(m, k)`` float64 buffer for block distances.

        Grows monotonically to the largest block seen; the returned
        view aliases previous calls' views, so consume each block's
        distances before requesting the next buffer.
        """
        self._dist_buf = self.mem.ensure_capacity(
            self._dist_buf, (m, self.k), np.float64,
            tag="workspace/dist_buf",
        )
        return self._dist_buf[:m]

    # -- teardown ------------------------------------------------------

    def release(self) -> None:
        """Return every manager-owned buffer. The workspace is unusable
        afterwards; build a new one to continue."""
        self.invalidate_x_sq()
        for arr in (
            self._c_sq, self._cc, self._cc_scratch, self._s,
            self._neg2ct_base, self._dist_buf,
        ):
            self.mem.free(arr)
        self._neg2ct = None
        self._neg2ct_base = None
        self._dist_buf = None
        self._centroids = None
        self._have_cc = False
        self._have_s = False
        self.accum.release()
