"""Minimal Triangle Inequality (MTI) pruning -- Section 4 of the paper.

MTI is Elkan's triangle-inequality algorithm minus the O(nk)
lower-bound matrix. Retained state is O(n) + O(k^2):

* ``ub[i]`` -- an upper bound on the distance from point ``i`` to its
  assigned centroid, loosened every iteration by the assigned
  centroid's motion ``f(c) = d(c^t, c^{t-1})``;
* the centroid-to-centroid distance matrix (O(k^2)), from which the
  clause thresholds are derived.

The three clauses (for point ``v`` assigned to ``b``):

1. if ``u <= 0.5 * min_{c != b} d(b, c)`` -- the point cannot move at
   all this iteration: skip every distance computation *and*, in
   knors, the I/O request for its row (Section 6.2.1).
2. if ``u <= 0.5 * d(b, c)`` -- the computation against centroid ``c``
   is pruned (loose bound, no row data needed).
3. tighten ``u`` to the exact ``d(v, b)`` (one distance computation),
   then prune ``c`` if the tightened ``u <= 0.5 * d(b, c)``.

The paper's prose omits the 1/2 factors; Elkan's Lemma 1 requires them
(``d(b,c) >= 2 u(x)`` implies ``d(x,c) >= d(x,b)``) and the released
knor code uses them. We implement the correct form and property-test
that MTI's assignments match unpruned Lloyd's exactly.

Centroid updates are *incremental*: only points that changed membership
move between the persistent per-cluster sums, so clause-1-skipped rows
contribute no memory traffic -- this is what makes clause 1 an I/O
elision in the semi-external module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.centroids import flat_sums, move_rows
from repro.core.distance import (
    euclidean,
    half_min_inter_centroid,
    nearest_centroid,
    pairwise_centroid_distances,
    rows_to_centroids,
)
from repro.errors import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workspace import DistanceWorkspace


@dataclass
class MtiState:
    """Persistent O(n) + O(kd) pruning state across iterations."""

    assignment: np.ndarray  # (n,) int32
    ub: np.ndarray  # (n,) float64 upper bounds
    sums: np.ndarray  # (k, d) persistent per-cluster sums
    counts: np.ndarray  # (k,) persistent membership counts

    @property
    def n(self) -> int:
        return self.assignment.shape[0]

    @property
    def k(self) -> int:
        return self.sums.shape[0]


@dataclass
class MtiIterationResult:
    """Exact outcome and pruning statistics of one MTI super-phase."""

    new_centroids: np.ndarray
    n_changed: int
    dist_per_row: np.ndarray  # (n,) int32 distance computations per row
    needs_data: np.ndarray  # (n,) bool -- row-data required (I/O in SEM)
    motion: np.ndarray  # (k,) centroid displacement f(c)
    # Pruning breakdown (point-centroid pairs unless noted):
    clause1_rows: int = 0  # rows skipped entirely
    clause2_pruned: int = 0
    clause3_pruned: int = 0
    tightened_rows: int = 0
    computed: int = 0  # candidate distances actually evaluated
    extra: dict = field(default_factory=dict)


def mti_init(
    x: np.ndarray,
    centroids: np.ndarray,
    *,
    workspace: "DistanceWorkspace | None" = None,
) -> tuple[MtiState, MtiIterationResult]:
    """Iteration 0: full assignment pass that seeds the MTI state.

    Every row costs k distance computations and a data read, exactly
    like an unpruned iteration.
    """
    x = np.asarray(x, dtype=np.float64)
    k, d = centroids.shape
    n = x.shape[0]
    assign, mindist = nearest_centroid(x, centroids, workspace=workspace)
    sums = flat_sums(
        x, assign, k,
        scratch=None if workspace is None else workspace.accum,
    )
    counts = np.bincount(assign, minlength=k).astype(np.int64)
    state = MtiState(
        assignment=assign, ub=mindist.copy(), sums=sums, counts=counts
    )
    new_centroids = centroids.copy()
    nonzero = counts > 0
    new_centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
    result = MtiIterationResult(
        new_centroids=new_centroids,
        n_changed=n,
        dist_per_row=np.full(n, k, dtype=np.int32),
        needs_data=np.ones(n, dtype=bool),
        motion=np.zeros(k),
        tightened_rows=0,
        computed=n * k,
    )
    return state, result


def mti_iteration(
    x: np.ndarray,
    centroids: np.ndarray,
    prev_centroids: np.ndarray,
    state: MtiState,
    *,
    workspace: "DistanceWorkspace | None" = None,
) -> MtiIterationResult:
    """One MTI-pruned super-phase; mutates ``state`` in place.

    With a ``workspace``, the centroid norms, pairwise matrix and
    clause-1 thresholds are computed once and the candidate distance
    block reuses a preallocated buffer; outputs are bit-identical.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    k = centroids.shape[0]
    if state.n != n:
        raise DatasetError(
            f"state tracks {state.n} rows but data has {n}"
        )

    # f(c): how far each centroid moved since last iteration.
    motion = rows_to_centroids(centroids, prev_centroids, np.arange(k))
    # Loosen every upper bound by its centroid's motion.
    state.ub += motion[state.assignment]

    c_sq = None
    x_sq_full = None
    if workspace is not None:
        centroids = workspace.ensure(centroids)
        c_sq = workspace.c_sq
        cc = workspace.pairwise()
        s = workspace.half_min()
        if workspace.kernel == "gemm":
            # The gemm strategy's per-array norm cache feeds the
            # tighten and candidate passes; gathered norms are
            # bit-identical to inline per-row reductions.
            x_sq_full = workspace.x_sq(x)
    else:
        cc = pairwise_centroid_distances(centroids)
        s = half_min_inter_centroid(cc)

    assign = state.assignment
    old_assign = assign.copy()

    # Clause 1: the whole row is skipped (no compute, no I/O).
    clause1 = state.ub <= s[assign]
    active_idx = np.nonzero(~clause1)[0]

    dist_per_row = np.zeros(n, dtype=np.int32)
    needs_data = np.zeros(n, dtype=bool)
    # Per Section 6.2.1, only clause 1 elides the I/O request: the row
    # data for every non-clause-1 row is requested (the tighten step
    # may need it, and the request is issued before the per-centroid
    # clauses are evaluated).
    needs_data[active_idx] = True

    clause2_pruned = 0
    clause3_pruned = 0
    computed = 0
    n_tightened = 0

    if active_idx.size:
        xa = x[active_idx]
        ba = assign[active_idx]
        ua = state.ub[active_idx]
        half_cc = 0.5 * cc[ba]  # (m, k): 0.5 * d(b(x), c)
        other = np.ones((active_idx.size, k), dtype=bool)
        other[np.arange(active_idx.size), ba] = False

        # Clause 2 with the loose bound.
        loose_candidate = other & (ua[:, None] > half_cc)
        clause2_pruned = int(other.sum() - loose_candidate.sum())

        tighten_mask = loose_candidate.any(axis=1)
        t_idx = np.nonzero(tighten_mask)[0]  # positions within active
        n_tightened = int(t_idx.size)
        if t_idx.size:
            xt = xa[t_idx]
            bt = ba[t_idx]
            ga = active_idx[t_idx]  # global row indices
            # U(u): exact d(x, b).
            ut = rows_to_centroids(
                xt, centroids, bt, c_sq=c_sq,
                x_sq=None if x_sq_full is None else x_sq_full[ga],
            )
            computed += int(t_idx.size)

            # Clause 3 with the tightened bound.
            tight_candidate = loose_candidate[t_idx] & (
                ut[:, None] > half_cc[t_idx]
            )
            clause3_pruned = int(
                loose_candidate[t_idx].sum() - tight_candidate.sum()
            )

            row_has_cand = tight_candidate.any(axis=1)
            c_idx = np.nonzero(row_has_cand)[0]  # positions within t_idx
            new_ub_t = ut.copy()
            new_assign_t = bt.copy()
            if c_idx.size:
                dist = euclidean(
                    xt[c_idx], centroids, c_sq=c_sq,
                    out=(
                        None if workspace is None
                        else workspace.dist_buffer(c_idx.size)
                    ),
                    x_sq=(
                        None if x_sq_full is None
                        else x_sq_full[ga[c_idx]]
                    ),
                )
                cand = tight_candidate[c_idx]
                computed += int(cand.sum())
                # The algorithm only "sees" candidate distances plus
                # the tightened own distance; mask everything else so
                # a pruning bug would surface as a wrong assignment.
                masked = np.where(cand, dist, np.inf)
                masked[np.arange(c_idx.size), bt[c_idx]] = ut[c_idx]
                best = np.argmin(masked, axis=1).astype(np.int32)
                bestdist = masked[np.arange(c_idx.size), best]
                new_assign_t[c_idx] = best
                new_ub_t[c_idx] = bestdist

            # Write back tightened bounds and any reassignments.
            state.ub[ga] = new_ub_t
            assign[ga] = new_assign_t

            dist_per_row[ga] = 1 + tight_candidate.sum(axis=1).astype(
                np.int32
            )

    # Incremental centroid update: move only the rows that changed.
    changed = np.nonzero(assign != old_assign)[0]
    n_changed = int(changed.size)
    if n_changed:
        move_rows(
            state.sums, state.counts,
            x[changed], old_assign[changed], assign[changed],
            scratch=None if workspace is None else workspace.accum,
        )

    new_centroids = centroids.copy()
    nonzero = state.counts > 0
    new_centroids[nonzero] = (
        state.sums[nonzero] / state.counts[nonzero, None]
    )

    return MtiIterationResult(
        new_centroids=new_centroids,
        n_changed=n_changed,
        dist_per_row=dist_per_row,
        needs_data=needs_data,
        motion=motion,
        clause1_rows=int(clause1.sum()),
        clause2_pruned=clause2_pruned,
        clause3_pruned=clause3_pruned,
        tightened_rows=n_tightened,
        computed=computed,
    )
