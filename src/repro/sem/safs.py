"""SAFS: the userspace filesystem between knors and the SSD array.

Responsibilities modeled (Section 2 and 6.2.1):

* map row-data byte ranges onto filesystem pages (minimum read unit);
* consult the page cache;
* **merge** requests for adjacent pages into larger SSD reads,
  amortizing access cost;
* charge the SSD array for the merged reads.

The req-vs-read gap of Figure 6 falls out of the geometry: MTI prunes
rows "in a near-random fashion", so a few requested rows can dirty many
pages, and each page read hauls in unrequested neighbour rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IoSubsystemError
from repro.sem.pagecache import PageCache
from repro.simhw.ssd import SsdArray


@dataclass
class IoBatch:
    """Exact outcome of one iteration's row-data fetch."""

    rows_requested: int
    bytes_requested: int  # what the algorithm asked for (row bytes)
    pages_needed: int  # distinct pages covering the rows
    page_cache_hits: int
    pages_from_ssd: int
    merged_requests: int  # SSD requests after merging adjacency runs
    bytes_read: int  # pages_from_ssd * page_bytes
    service_ns: float


class Safs:
    """Row-request front end over (page cache + SSD array)."""

    def __init__(
        self,
        ssd: SsdArray,
        *,
        page_cache_bytes: int,
        data_offset: int = 0,
    ) -> None:
        self.ssd = ssd
        self.page_bytes = ssd.page_bytes
        self.page_cache = PageCache(page_cache_bytes, self.page_bytes)
        self.data_offset = data_offset

    def pages_of_rows(
        self, rows: np.ndarray, row_bytes: int
    ) -> np.ndarray:
        """Distinct page indices covering the given rows.

        Rows are contiguous on disk (row-major layout), so row ``i``
        spans bytes ``[i*row_bytes, (i+1)*row_bytes)`` after the
        header offset.
        """
        if row_bytes <= 0:
            raise IoSubsystemError(f"row_bytes must be > 0, got {row_bytes}")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.data_offset + rows * row_bytes
        ends = starts + row_bytes - 1
        first = starts // self.page_bytes
        last = ends // self.page_bytes
        # Rows rarely span more than 2 pages (row_bytes << page_bytes in
        # every experiment); expand ranges generically anyway.
        max_span = int((last - first).max()) + 1
        pages = first[:, None] + np.arange(max_span)[None, :]
        mask = pages <= last[:, None]
        return np.unique(pages[mask])

    @staticmethod
    def merge_requests(pages: np.ndarray) -> int:
        """Number of SSD requests after merging adjacent-page runs.

        SAFS merges I/O "when requests are made for data located near
        one another on disk"; a run of consecutive pages becomes one
        request.
        """
        if pages.size == 0:
            return 0
        pages = np.sort(np.asarray(pages, dtype=np.int64))
        breaks = np.count_nonzero(np.diff(pages) > 1)
        return int(breaks) + 1

    def fetch_rows(self, rows: np.ndarray, row_bytes: int) -> IoBatch:
        """Fetch row data for ``rows``: page cache first, SSD for misses.

        Returns the exact I/O accounting; the caller holds the actual
        data (from the memmapped file), so no bytes move through here.
        """
        rows = np.asarray(rows, dtype=np.int64)
        bytes_requested = int(rows.size) * row_bytes
        pages = self.pages_of_rows(rows, row_bytes)
        miss_pages = [p for p in pages.tolist() if not self.page_cache.lookup(p)]
        hits = int(pages.size) - len(miss_pages)
        miss_arr = np.asarray(miss_pages, dtype=np.int64)
        n_requests = self.merge_requests(miss_arr)
        result = self.ssd.read(n_requests, len(miss_pages))
        for p in miss_pages:
            self.page_cache.admit(p)
        return IoBatch(
            rows_requested=int(rows.size),
            bytes_requested=bytes_requested,
            pages_needed=int(pages.size),
            page_cache_hits=hits,
            pages_from_ssd=len(miss_pages),
            merged_requests=n_requests,
            bytes_read=result.bytes_read,
            service_ns=result.service_ns,
        )
