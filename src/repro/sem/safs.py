"""SAFS: the userspace filesystem between knors and the SSD array.

Responsibilities modeled (Section 2 and 6.2.1):

* map row-data byte ranges onto filesystem pages (minimum read unit);
* consult the page cache;
* **merge** requests for adjacent pages into larger SSD reads,
  amortizing access cost;
* charge the SSD array for the merged reads -- synchronously, or
  through an async request queue (:class:`~repro.simhw.ssd.AsyncIoQueue`)
  that amortizes per-request cost across the array's channels.

The req-vs-read gap of Figure 6 falls out of the geometry: MTI prunes
rows "in a near-random fashion", so a few requested rows can dirty many
pages, and each page read hauls in unrequested neighbour rows.

The whole fetch path is vectorized: page resolution is chunked range
expansion over int64 arrays, cache probes and admissions are single
batch calls into the array-based LRU, and request merging is one
``diff`` over the (already sorted) miss vector. Counters are
bit-identical to the pre-vectorization path frozen in
``repro.perf.legacy.LegacySafs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import CorruptionError, IoSubsystemError, RetryExhaustedError
from repro.resilience.integrity import PageIntegrity
from repro.sem.pagecache import PageCache
from repro.simhw.ssd import AsyncIoQueue, SsdArray, SsdReadResult

#: Ceiling on the size (cells) of one ``pages_of_rows`` expansion
#: temporary. When rows span many pages (row_bytes >= page_bytes) the
#: naive rows x span matrix is O(rows x span) = O(total data) -- far
#: larger than the O(distinct pages) output -- so the expansion walks
#: the rows in chunks of at most this many cells.
_EXPAND_CELLS = 1 << 20


@dataclass
class IoBatch:
    """Exact outcome of one iteration's row-data fetch.

    ``service_async_ns`` is the batch's service time through the async
    request queue (equal to ``service_ns`` when no queue is attached);
    fault-recovery delay is folded into both, computed once from the
    sync service time so fault accounting is mode-independent.
    """

    rows_requested: int
    bytes_requested: int  # what the algorithm asked for (row bytes)
    pages_needed: int  # distinct pages covering the rows
    page_cache_hits: int
    pages_from_ssd: int
    merged_requests: int  # SSD requests after merging adjacency runs
    bytes_read: int  # pages_from_ssd * page_bytes
    service_ns: float
    io_retries: int = 0  # injected-fault re-reads this batch paid for
    fault_delay_ns: float = 0.0  # fault time folded into service_ns
    service_async_ns: float = 0.0  # async-queue service incl. fault time


class Safs:
    """Row-request front end over (page cache + SSD array).

    When a :class:`~repro.faults.FaultPlan` is attached, each SSD
    batch may suffer an injected read error (answered by the retry
    policy's backoff + re-read loop, all charged simulated time) or a
    slow-page latency spike; outcomes are reported through the
    observer's ``on_fault``/``on_retry``/``on_recovery`` hooks.
    """

    def __init__(
        self,
        ssd: SsdArray,
        *,
        page_cache_bytes: int,
        data_offset: int = 0,
        faults: Any = None,
        retry_policy: Any = None,
        io_queue: AsyncIoQueue | None = None,
        mem: Any = None,
    ) -> None:
        self.ssd = ssd
        self.page_bytes = ssd.page_bytes
        self.page_cache = PageCache(
            page_cache_bytes, self.page_bytes, mem=mem
        )
        self.data_offset = data_offset
        self.faults = faults
        self.io_queue = io_queue
        self.integrity = PageIntegrity()
        if retry_policy is None and faults is not None:
            from repro.faults import DEFAULT_RETRY_POLICY

            retry_policy = DEFAULT_RETRY_POLICY
        self.retry_policy = retry_policy

    def pages_of_rows(
        self, rows: np.ndarray, row_bytes: int
    ) -> np.ndarray:
        """Distinct page indices covering the given rows, sorted.

        Rows are contiguous on disk (row-major layout), so row ``i``
        spans bytes ``[i*row_bytes, (i+1)*row_bytes)`` after the
        header offset. Single-page rows (the common geometry:
        row_bytes << page_bytes) reduce to one ``unique``; rows that
        span pages expand first..last ranges in bounded chunks so the
        temporary never exceeds ``_EXPAND_CELLS`` cells even when
        row_bytes >= page_bytes.
        """
        if row_bytes <= 0:
            raise IoSubsystemError(f"row_bytes must be > 0, got {row_bytes}")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.data_offset + rows * row_bytes
        ends = starts + row_bytes - 1
        first = starts // self.page_bytes
        last = ends // self.page_bytes
        max_span = int((last - first).max()) + 1
        if max_span == 1:
            return np.unique(first)
        chunk_rows = max(1, _EXPAND_CELLS // max_span)
        span_cols = np.arange(max_span, dtype=np.int64)
        parts = []
        for lo in range(0, rows.size, chunk_rows):
            f = first[lo : lo + chunk_rows]
            ls = last[lo : lo + chunk_rows]
            pages = f[:, None] + span_cols[None, :]
            mask = pages <= ls[:, None]
            parts.append(np.unique(pages[mask]))
        if len(parts) == 1:
            return parts[0]
        return np.unique(np.concatenate(parts))

    @staticmethod
    def merge_requests(pages: np.ndarray) -> int:
        """Number of SSD requests after merging adjacent-page runs.

        SAFS merges I/O "when requests are made for data located near
        one another on disk"; a run of consecutive pages becomes one
        request. ``pages`` must be sorted ascending -- every caller
        passes ``np.unique`` output (``pages_of_rows`` or its
        cache-miss subset, which preserves order), so no re-sort.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return 0
        breaks = np.count_nonzero(np.diff(pages) > 1)
        return int(breaks) + 1

    def fetch_rows(
        self,
        rows: np.ndarray,
        row_bytes: int,
        *,
        iteration: int = 0,
        observer: Any = None,
    ) -> IoBatch:
        """Fetch row data for ``rows``: page cache first, SSD for misses.

        Returns the exact I/O accounting; the caller holds the actual
        data (from the memmapped file), so no bytes move through here.
        ``iteration``/``observer`` feed the fault plane when a plan is
        attached (a batch that reads zero pages cannot fault).
        """
        rows = np.asarray(rows, dtype=np.int64)
        bytes_requested = int(rows.size) * row_bytes
        pages = self.pages_of_rows(rows, row_bytes)
        hit_mask = self.page_cache.lookup_batch(pages)
        miss_pages = pages[~hit_mask]
        hits = int(pages.size) - int(miss_pages.size)
        n_requests = self.merge_requests(miss_pages)
        result = self.ssd.read(n_requests, int(miss_pages.size))
        if self.io_queue is not None:
            async_clean_ns = self.ssd.read_async(
                n_requests, int(miss_pages.size), self.io_queue
            ).service_ns
        else:
            async_clean_ns = result.service_ns
        if self.faults is not None and result.pages_read > 0:
            result = self._apply_faults(result, iteration, observer)
        if (
            self.faults is not None
            and getattr(self.faults, "corruption_enabled", False)
            and pages.size > 0
        ):
            result = self._apply_corruption(
                result, pages, hit_mask, iteration, observer
            )
        self.page_cache.admit_batch(miss_pages)
        return IoBatch(
            rows_requested=int(rows.size),
            bytes_requested=bytes_requested,
            pages_needed=int(pages.size),
            page_cache_hits=hits,
            pages_from_ssd=int(miss_pages.size),
            merged_requests=n_requests,
            bytes_read=result.bytes_read,
            service_ns=result.service_ns,
            io_retries=result.retries,
            fault_delay_ns=result.fault_delay_ns,
            service_async_ns=async_clean_ns + result.fault_delay_ns,
        )

    def _apply_faults(
        self, result: SsdReadResult, iteration: int, observer: Any
    ) -> SsdReadResult:
        """Resolve one batch's injected fault, charging simulated time."""
        kind = self.faults.ssd_fault(iteration)
        if kind is None:
            return result
        if observer is None:
            from repro.runtime.observer import RunObserver

            observer = RunObserver()
        if kind == "slow":
            extra = result.service_ns * (
                self.faults.spec.ssd_slow_factor - 1.0
            )
            observer.on_fault(
                iteration, "ssd", "slow",
                {"factor": self.faults.spec.ssd_slow_factor},
            )
            observer.on_recovery(
                iteration, "ssd", "absorbed", {"extra_ns": extra}
            )
            return result.delayed(extra, 0)
        # Read error: backoff + full re-read per attempt, until a
        # retry succeeds or the policy budget runs out.
        policy = self.retry_policy
        observer.on_fault(
            iteration, "ssd", "read_error",
            {"requests": result.n_requests, "pages": result.pages_read},
        )
        delay = 0.0
        attempt = 0
        while True:
            attempt += 1
            if attempt > policy.max_retries:
                raise RetryExhaustedError(
                    f"SSD batch failed {policy.max_retries} retries "
                    f"at iteration {iteration}"
                )
            backoff = policy.backoff(attempt)
            delay += backoff + result.service_ns
            observer.on_retry(iteration, "ssd", attempt, backoff)
            if not self.faults.ssd_retry_fails(iteration):
                break
            observer.on_fault(
                iteration, "ssd", "read_error", {"attempt": attempt}
            )
        observer.on_recovery(
            iteration, "ssd", "retried", {"attempts": attempt}
        )
        return result.delayed(delay, attempt)

    def _apply_corruption(
        self,
        result: SsdReadResult,
        pages: np.ndarray,
        hit_mask: np.ndarray,
        iteration: int,
        observer: Any,
    ) -> SsdReadResult:
        """Detect and repair an injected page corruption.

        One deterministic victim page in the batch arrives with a
        flipped byte; per-page CRC32 verification *always* catches it
        (a single-byte flip cannot collide). The poisoned copy is
        quarantined -- discarded from the page cache if resident,
        withheld from admission otherwise -- and repaired by re-reading
        the page from a clean device, charging backoff plus one-page
        service per attempt. A repair that keeps failing past the
        retry budget raises :class:`~repro.errors.CorruptionError`:
        the run aborts rather than clustering on bad bytes.
        """
        if not self.faults.page_corruption(iteration):
            return result
        if observer is None:
            from repro.runtime.observer import RunObserver

            observer = RunObserver()
        policy = self.retry_policy
        victim_idx = int(iteration % pages.size)
        victim = int(pages[victim_idx])
        resident = bool(hit_mask[victim_idx])
        reread_ns = self.ssd.read(1, 1).service_ns
        delay = 0.0
        bad = 0
        while True:
            bad += 1
            all_clean = self.integrity.verify_pages(
                pages, corrupt_page=victim
            )
            if all_clean:
                raise CorruptionError(
                    f"page {victim} corruption escaped CRC32 "
                    f"verification at iteration {iteration}"
                )
            observer.on_fault(
                iteration, "corruption", "page",
                {"page": victim, "attempt": bad, "resident": resident},
            )
            observer.on_corruption(
                iteration, "ssd-page", {"page": victim, "attempt": bad}
            )
            if bad == 1:
                discarded = 0
                if resident:
                    discarded = self.page_cache.discard_batch(
                        np.array([victim], dtype=np.int64)
                    )
                observer.on_quarantine(
                    iteration, "ssd-page", f"page-{victim}",
                    {
                        "discarded": discarded,
                        "action": (
                            "evicted" if resident else "admission-withheld"
                        ),
                    },
                )
            if bad > policy.max_retries:
                raise CorruptionError(
                    f"page {victim} still corrupt after "
                    f"{policy.max_retries} re-reads at iteration "
                    f"{iteration}"
                )
            backoff = policy.backoff(bad)
            delay += backoff + reread_ns
            observer.on_retry(iteration, "corruption", bad, backoff)
            if not self.faults.corruption_repair_fails(iteration, "page"):
                break
        observer.on_recovery(
            iteration, "corruption", "reread",
            {"page": victim, "attempts": bad},
        )
        return result.delayed(delay, bad)
