"""The partitioned, lazily-updated row cache (Section 6.2.2, Figure 3).

The row cache pins **active rows** -- rows that issued an I/O request
in the refresh iteration -- in memory at row granularity. Design points
reproduced from the paper:

* *Partitioned*: one partition per data partition (generally one per
  thread); each partition admits only rows it owns, into a lock-free
  local structure, so population needs no locking.
* *Lazily updated*: the cache refreshes at iteration ``I_cache``
  (default 5, the paper's setting for all experiments), then the gap
  to the next refresh doubles -- 5, 10, 20, 40... Row activation
  patterns stabilize as centroids root themselves, so a stale cache
  still hits ("nearly a 100% cache hit rate", Figure 7).
* *Capacity-bounded*: a user-defined byte budget split across
  partitions -- the first ``capacity_rows % n_partitions`` partitions
  hold one extra row, so no capacity is dropped to rounding; within a
  refresh each partition admits its active rows in row order until its
  quota fills.

Refresh is a single vectorized pass (partition ids by ``searchsorted``,
rank-within-partition against the quota vector) rather than a Python
loop over partitions. The refresh also marks the cache *populated*,
which the async I/O pipeline uses as its prefetch gate: once an active
set is known, the next iterations' fetches are predictable enough to
issue ahead of the compute front.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IoSubsystemError
from repro.mem import MemoryManager, current_manager


class RowCache:
    """Partitioned lazily-updated row cache."""

    def __init__(
        self,
        capacity_bytes: int,
        row_bytes: int,
        n_rows: int,
        *,
        n_partitions: int = 1,
        update_interval: int = 5,
        mem: MemoryManager | None = None,
    ) -> None:
        if row_bytes <= 0:
            raise IoSubsystemError(f"row_bytes must be > 0, got {row_bytes}")
        if n_rows <= 0:
            raise IoSubsystemError(f"n_rows must be > 0, got {n_rows}")
        if n_partitions <= 0:
            raise IoSubsystemError("n_partitions must be > 0")
        if update_interval <= 0:
            raise IoSubsystemError("update_interval must be > 0")
        self.capacity_rows = max(0, capacity_bytes) // row_bytes
        self.row_bytes = row_bytes
        self.n_rows = n_rows
        self.n_partitions = n_partitions
        self.update_interval = update_interval
        self.mem = mem if mem is not None else current_manager()
        self._cached = self.mem.alloc(
            (n_rows,), np.bool_, tag="rowcache/resident", zero=True
        )
        self._next_refresh = update_interval
        self._gap = update_interval
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        self.populated = False  # has an active set ever been admitted?
        # Partition boundaries (FlashGraph partitions the matrix evenly).
        self._bounds = np.linspace(
            0, n_rows, n_partitions + 1, dtype=np.int64
        )

    @property
    def cached_rows(self) -> int:
        return int(self._cached.sum())

    @property
    def cached_bytes(self) -> int:
        return self.cached_rows * self.row_bytes

    def partition_quotas(self) -> np.ndarray:
        """Per-partition admission quota; the ``capacity % partitions``
        remainder goes to the first partitions, one row each."""
        base, rem = divmod(self.capacity_rows, self.n_partitions)
        quotas = np.full(self.n_partitions, base, dtype=np.int64)
        quotas[:rem] += 1
        return quotas

    def partition_occupancy(self) -> np.ndarray:
        """Rows currently cached per partition (Figure 7-style skew)."""
        csum = np.concatenate(
            ([0], np.cumsum(self._cached, dtype=np.int64))
        )
        return csum[self._bounds[1:]] - csum[self._bounds[:-1]]

    def lookup(self, rows: np.ndarray) -> np.ndarray:
        """Hit mask for the requested rows; updates hit/miss tallies."""
        rows = np.asarray(rows, dtype=np.int64)
        mask = self._cached[rows]
        self.hits += int(mask.sum())
        self.misses += int(rows.size - mask.sum())
        return mask

    def should_refresh(self, iteration: int) -> bool:
        """Is ``iteration`` a scheduled (exponentially spaced) refresh?"""
        return iteration == self._next_refresh

    def refresh(self, iteration: int, active_rows: np.ndarray) -> int:
        """Flush and repopulate from this iteration's active rows.

        Each partition admits its own active rows, in row order, until
        its quota is exhausted. Returns rows admitted. One vectorized
        pass: partition ids via ``searchsorted`` on the bounds, then a
        rank-within-partition comparison against the quota vector.
        """
        if not self.should_refresh(iteration):
            raise IoSubsystemError(
                f"refresh called at iteration {iteration}, scheduled at "
                f"{self._next_refresh}"
            )
        self._cached[:] = False
        active_rows = np.asarray(active_rows, dtype=np.int64)
        admitted = 0
        if active_rows.size:
            quotas = self.partition_quotas()
            part = (
                np.searchsorted(self._bounds, active_rows, side="right") - 1
            )
            # Stable sort groups by partition while keeping each
            # partition's rows in their original (row) order.
            order = np.argsort(part, kind="stable")
            sorted_part = part[order]
            counts = np.bincount(sorted_part, minlength=self.n_partitions)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            rank = np.arange(active_rows.size) - starts[sorted_part]
            take = active_rows[order[rank < quotas[sorted_part]]]
            self._cached[take] = True
            admitted = int(take.size)
        self.refreshes += 1
        self.populated = True
        self._gap *= 2
        self._next_refresh = iteration + self._gap
        return admitted

    def fast_forward(self, iteration: int) -> None:
        """Advance the refresh schedule past ``iteration`` without
        populating (used when resuming from a checkpoint: the cache
        restarts cold and re-engages at the next scheduled refresh)."""
        while self._next_refresh <= iteration:
            self._next_refresh += self._gap * 2
            self._gap *= 2

    def evict(self, rows: np.ndarray) -> int:
        """Quarantine: drop ``rows`` without touching hit/miss tallies
        or the refresh schedule.

        Used by the integrity layer when a cached row's DRAM copy fails
        its checksum -- the poisoned line leaves the cache so the row
        is re-fetched through the clean SSD path. Returns how many of
        the requested rows were actually cached.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return 0
        was = int(self._cached[rows].sum())
        self._cached[rows] = False
        return was

    def clear(self) -> None:
        """Drop contents and reset the refresh schedule."""
        self._cached[:] = False
        self._gap = self.update_interval
        self._next_refresh = self.update_interval
        self.populated = False

    def release(self) -> None:
        """Return the residency bitmap to the owning manager. The cache
        is unusable afterwards."""
        if self._cached is not None:
            self.mem.free(self._cached)
            self._cached = None
