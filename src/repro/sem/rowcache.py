"""The partitioned, lazily-updated row cache (Section 6.2.2, Figure 3).

The row cache pins **active rows** -- rows that issued an I/O request
in the refresh iteration -- in memory at row granularity. Design points
reproduced from the paper:

* *Partitioned*: one partition per data partition (generally one per
  thread); each partition admits only rows it owns, into a lock-free
  local structure, so population needs no locking.
* *Lazily updated*: the cache refreshes at iteration ``I_cache``
  (default 5, the paper's setting for all experiments), then the gap
  to the next refresh doubles -- 5, 10, 20, 40... Row activation
  patterns stabilize as centroids root themselves, so a stale cache
  still hits ("nearly a 100% cache hit rate", Figure 7).
* *Capacity-bounded*: a user-defined byte budget, split evenly across
  partitions; within a refresh each partition admits its active rows
  in row order until full.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IoSubsystemError


class RowCache:
    """Partitioned lazily-updated row cache."""

    def __init__(
        self,
        capacity_bytes: int,
        row_bytes: int,
        n_rows: int,
        *,
        n_partitions: int = 1,
        update_interval: int = 5,
    ) -> None:
        if row_bytes <= 0:
            raise IoSubsystemError(f"row_bytes must be > 0, got {row_bytes}")
        if n_rows <= 0:
            raise IoSubsystemError(f"n_rows must be > 0, got {n_rows}")
        if n_partitions <= 0:
            raise IoSubsystemError("n_partitions must be > 0")
        if update_interval <= 0:
            raise IoSubsystemError("update_interval must be > 0")
        self.capacity_rows = max(0, capacity_bytes) // row_bytes
        self.row_bytes = row_bytes
        self.n_rows = n_rows
        self.n_partitions = n_partitions
        self.update_interval = update_interval
        self._cached = np.zeros(n_rows, dtype=bool)
        self._next_refresh = update_interval
        self._gap = update_interval
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        # Partition boundaries (FlashGraph partitions the matrix evenly).
        self._bounds = np.linspace(
            0, n_rows, n_partitions + 1, dtype=np.int64
        )

    @property
    def cached_rows(self) -> int:
        return int(self._cached.sum())

    @property
    def cached_bytes(self) -> int:
        return self.cached_rows * self.row_bytes

    def lookup(self, rows: np.ndarray) -> np.ndarray:
        """Hit mask for the requested rows; updates hit/miss tallies."""
        rows = np.asarray(rows, dtype=np.int64)
        mask = self._cached[rows]
        self.hits += int(mask.sum())
        self.misses += int(rows.size - mask.sum())
        return mask

    def should_refresh(self, iteration: int) -> bool:
        """Is ``iteration`` a scheduled (exponentially spaced) refresh?"""
        return iteration == self._next_refresh

    def refresh(self, iteration: int, active_rows: np.ndarray) -> int:
        """Flush and repopulate from this iteration's active rows.

        Each partition admits its own active rows, in row order, until
        its share of the capacity is exhausted. Returns rows admitted.
        """
        if not self.should_refresh(iteration):
            raise IoSubsystemError(
                f"refresh called at iteration {iteration}, scheduled at "
                f"{self._next_refresh}"
            )
        self._cached[:] = False
        active_rows = np.asarray(active_rows, dtype=np.int64)
        per_part = self.capacity_rows // self.n_partitions
        admitted = 0
        for p in range(self.n_partitions):
            lo, hi = self._bounds[p], self._bounds[p + 1]
            mine = active_rows[(active_rows >= lo) & (active_rows < hi)]
            take = mine[:per_part]
            self._cached[take] = True
            admitted += int(take.size)
        self.refreshes += 1
        self._gap *= 2
        self._next_refresh = iteration + self._gap
        return admitted

    def fast_forward(self, iteration: int) -> None:
        """Advance the refresh schedule past ``iteration`` without
        populating (used when resuming from a checkpoint: the cache
        restarts cold and re-engages at the next scheduled refresh)."""
        while self._next_refresh <= iteration:
            self._next_refresh += self._gap * 2
            self._gap *= 2

    def clear(self) -> None:
        """Drop contents and reset the refresh schedule."""
        self._cached[:] = False
        self._gap = self.update_interval
        self._next_refresh = self.update_interval
