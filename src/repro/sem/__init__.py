"""Semi-external-memory substrate (Section 6).

knors keeps O(n) algorithm state in memory and streams the O(nd) row
data from an SSD array through a modified FlashGraph. The stack here
mirrors that architecture layer by layer:

* :mod:`repro.sem.pagecache` -- SAFS's page cache (pins hot filesystem
  pages in memory).
* :mod:`repro.sem.safs` -- the userspace filesystem model: maps row
  requests to 4 KB pages, merges adjacent requests, consults the page
  cache, and charges the SSD array for what remains.
* :mod:`repro.sem.rowcache` -- the paper's contribution on top: a
  partitioned, lazily-updated **row cache** that pins active rows at
  row (not page) granularity, with exponentially spaced refreshes
  (Section 6.2.2).
* :mod:`repro.sem.flashgraph` -- the ``page_row`` engine: one
  iteration's I/O plan (row cache -> page cache -> SSD) with
  asynchronous I/O overlapping compute.

Data flowing through this stack is *real*: rows come back from an
actual on-disk file (:class:`repro.data.MatrixFile`); only service
times are modeled.
"""

from repro.sem.pagecache import PageCache
from repro.sem.safs import Safs, IoBatch
from repro.sem.rowcache import RowCache
from repro.sem.flashgraph import RowEngine, IoIterationStats

__all__ = [
    "PageCache",
    "Safs",
    "IoBatch",
    "RowCache",
    "RowEngine",
    "IoIterationStats",
]
