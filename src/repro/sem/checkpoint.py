"""Lightweight checkpointing for semi-external runs.

FlashGraph "is also tolerant to in-memory failures, allowing recovery
in SEM routines through lightweight checkpointing" (Section 2). The
state a SEM k-means run needs to resume is exactly its O(n) in-memory
footprint: assignments, MTI upper bounds, the persistent per-cluster
sums/counts, current/previous centroids and the iteration counter. Row
data never needs checkpointing -- it is already durable on SSD.

Durability protocol (format version 3): each save writes its arrays to
a fresh sequence-numbered ``checkpoint-<seq>.npz`` (never overwriting
the arrays a live manifest references), then commits by atomically
renaming the manifest over ``checkpoint.json``. The manifest rename is
the *only* commit point, so a crash at any instant -- mid-array-write,
between tmp-write and rename, or before garbage collection -- leaves
the previous checkpoint fully loadable (the crash-matrix tests inject
crashes at each point via :mod:`repro.faults`). Version 1 checkpoints
(single ``checkpoint.npz``, renamed arrays-then-manifest) remain
loadable; version 1's window where an old manifest could pair with
newly renamed arrays is what the redesign closes.

Format version 3 adds integrity checksums: the manifest records a
CRC32 of the whole arrays file plus one CRC32 per stored array.
:func:`load_checkpoint` verifies the file checksum before parsing and
every array checksum after, raising
:class:`~repro.errors.CorruptionError` on any mismatch -- a flipped
bit on the simulated SSD is always *detected*, never silently resumed
from. Versions 1 and 2 (no checksums) still load.

Format version 4 generalizes the *contents* without touching the
protocol: instead of the fixed kmeans field set, a v4 checkpoint
stores an arbitrary dict of named arrays plus scalar state and the
owning algorithm's name (the MM plane: GMM saves means/variances/
weights/ll_history, Yinyang saves its group bounds, ...). The
durability protocol -- sequence-numbered arrays file, CRC32s, atomic
manifest rename as the sole commit point, GC -- is byte-for-byte the
v3 one, so every crash-point guarantee carries over. The two loaders
reject each other's manifests with a clear error rather than
misparsing them.

The paper disables checkpointing during performance evaluation
(Section 8.5), and so do the benches; the integration and fault tests
exercise crash/recovery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CorruptionError, IoSubsystemError, WorkerCrashError
from repro.mem import MemoryManager, current_manager
from repro.resilience.integrity import array_crc32, crc32_bytes

_MANIFEST = "checkpoint.json"
_V1_ARRAYS = "checkpoint.npz"
_FORMAT_VERSION = 3
_MM_FORMAT_VERSION = 4


def _stage_arrays(
    arrays: dict[str, np.ndarray], mem: MemoryManager
) -> dict[str, np.ndarray]:
    """Copy checkpoint arrays into manager-owned assembly buffers.

    The save protocol serializes and checksums a *snapshot*: staging
    through the manager makes that transient O(n) spike visible to (and
    chargeable against) the memory plane, and the pooled buffers are
    reused across periodic saves. Values are bit-for-bit copies, so the
    serialized bytes and CRCs are unchanged.
    """
    staged = {}
    for name, arr in arrays.items():
        buf = mem.alloc(arr.shape, arr.dtype, tag=f"checkpoint/{name}")
        np.copyto(buf, arr, casting="no")
        staged[name] = buf
    return staged


def _release_arrays(
    staged: dict[str, np.ndarray], mem: MemoryManager
) -> None:
    for arr in staged.values():
        mem.free(arr)


@dataclass
class CheckpointState:
    """Everything needed to resume a knors run."""

    iteration: int
    centroids: np.ndarray
    prev_centroids: np.ndarray
    assignment: np.ndarray
    ub: np.ndarray | None  # None when pruning is off
    sums: np.ndarray | None
    counts: np.ndarray | None
    n_changed: int
    params: dict


def _read_manifest(directory: Path) -> dict | None:
    """The committed manifest, or None when absent/unparseable."""
    path = directory / _MANIFEST
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def _arrays_path(directory: Path, manifest: dict) -> Path | None:
    """The arrays file a manifest references, version-aware."""
    version = manifest.get("format_version")
    if version == 1:
        return directory / _V1_ARRAYS
    if version in (2, _FORMAT_VERSION, _MM_FORMAT_VERSION):
        name = manifest.get("arrays")
        if not name or "/" in str(name):
            return None
        return directory / str(name)
    return None


def save_checkpoint(
    directory: str | Path,
    state: CheckpointState,
    *,
    crash_point: str | None = None,
) -> Path:
    """Atomically persist a checkpoint, replacing any previous one.

    ``crash_point`` (injected by a :class:`~repro.faults.FaultPlan`)
    raises :class:`~repro.errors.WorkerCrashError` at the named stage
    of the protocol; the previous checkpoint stays loadable at every
    stage, and ``committed-no-gc`` leaves the *new* one loadable with
    one stale arrays file the next save collects.
    """
    if (state.sums is None) != (state.counts is None):
        raise IoSubsystemError(
            "checkpoint sums and counts must be saved together "
            f"(sums is {'None' if state.sums is None else 'set'}, "
            f"counts is {'None' if state.counts is None else 'set'})"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    previous = _read_manifest(directory)
    seq = (previous.get("seq", 0) if previous else 0) + 1
    arrays_name = f"checkpoint-{seq:08d}.npz"

    arrays = {
        "centroids": state.centroids,
        "prev_centroids": state.prev_centroids,
        "assignment": state.assignment,
    }
    if state.ub is not None:
        arrays["ub"] = state.ub
    if state.sums is not None:
        arrays["sums"] = state.sums
        arrays["counts"] = state.counts
    mem = current_manager()
    staged = _stage_arrays(arrays, mem)
    try:
        with open(directory / arrays_name, "wb") as fh:
            np.savez(fh, **staged)
        file_crc = crc32_bytes((directory / arrays_name).read_bytes())
        array_crcs = {
            name: array_crc32(arr) for name, arr in staged.items()
        }
    finally:
        _release_arrays(staged, mem)
    if crash_point == "arrays-written":
        raise WorkerCrashError(
            "injected crash: arrays written, manifest not committed"
        )

    tmp_manifest = directory / (_MANIFEST + ".tmp")
    tmp_manifest.write_text(
        json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "seq": seq,
                "arrays": arrays_name,
                "file_crc32": file_crc,
                "array_crc32": array_crcs,
                "iteration": state.iteration,
                "n_changed": state.n_changed,
                "has_ub": state.ub is not None,
                "has_sums": state.sums is not None,
                "params": state.params,
            }
        )
    )
    if crash_point == "manifest-tmp-written":
        raise WorkerCrashError(
            "injected crash: between manifest tmp-write and rename"
        )

    # The single atomic commit point.
    tmp_manifest.replace(directory / _MANIFEST)
    if crash_point == "committed-no-gc":
        raise WorkerCrashError(
            "injected crash: committed, stale arrays not collected"
        )

    # Garbage-collect arrays files no manifest references (previous
    # generations, plus leftovers from crashed saves).
    for path in directory.glob("checkpoint-*.npz"):
        if path.name != arrays_name:
            path.unlink(missing_ok=True)
    old_v1 = directory / _V1_ARRAYS
    if old_v1.exists():
        old_v1.unlink()
    return directory


def load_checkpoint(directory: str | Path) -> CheckpointState:
    """Load the checkpoint in ``directory``; raises if absent/corrupt."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    if manifest is None:
        if (directory / _MANIFEST).exists():
            raise IoSubsystemError(
                f"corrupt checkpoint manifest in {directory}"
            )
        raise IoSubsystemError(f"no checkpoint in {directory}")
    version = manifest.get("format_version")
    if version == _MM_FORMAT_VERSION:
        raise IoSubsystemError(
            f"checkpoint in {directory} is a generic MM (v4) "
            f"checkpoint for algorithm "
            f"{manifest.get('algorithm')!r}; load it with "
            f"load_mm_checkpoint"
        )
    if version not in (1, 2, _FORMAT_VERSION):
        raise IoSubsystemError(
            f"unsupported checkpoint version {version}"
        )
    arrays_path = _arrays_path(directory, manifest)
    if arrays_path is None or not arrays_path.exists():
        raise IoSubsystemError(
            f"checkpoint manifest in {directory} references missing "
            f"arrays"
        )
    if version == _FORMAT_VERSION:
        file_crc = crc32_bytes(arrays_path.read_bytes())
        want = int(manifest["file_crc32"])
        if file_crc != want:
            raise CorruptionError(
                f"checkpoint arrays file {arrays_path.name} failed CRC32 "
                f"(stored {want:#010x}, computed {file_crc:#010x})"
            )
    if version == 1:
        has_ub = has_sums = bool(manifest["has_pruning_state"])
    else:
        has_ub = bool(manifest["has_ub"])
        has_sums = bool(manifest["has_sums"])
    with np.load(arrays_path) as data:
        state = CheckpointState(
            iteration=int(manifest["iteration"]),
            centroids=data["centroids"].copy(),
            prev_centroids=data["prev_centroids"].copy(),
            assignment=data["assignment"].copy(),
            ub=data["ub"].copy() if has_ub else None,
            sums=data["sums"].copy() if has_sums else None,
            counts=data["counts"].copy() if has_sums else None,
            n_changed=int(manifest["n_changed"]),
            params=manifest["params"],
        )
    if version == _FORMAT_VERSION:
        for name, want_crc in manifest["array_crc32"].items():
            arr = getattr(state, name, None)
            if arr is None:
                continue
            got = array_crc32(arr)
            if got != int(want_crc):
                raise CorruptionError(
                    f"checkpoint array {name!r} failed CRC32 "
                    f"(stored {int(want_crc):#010x}, computed {got:#010x})"
                )
    return state


def has_checkpoint(directory: str | Path) -> bool:
    """Is there a loadable checkpoint in ``directory``?"""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    if manifest is None:
        return False
    arrays_path = _arrays_path(directory, manifest)
    return arrays_path is not None and arrays_path.exists()


def corrupt_checkpoint(directory: str | Path) -> int:
    """Flip one byte mid-file in the committed arrays file.

    Fault-injection helper for the ``corruption``/``checkpoint`` site:
    simulates a bit flip on the durable medium after the save
    committed. Returns the byte offset that was flipped so the event
    can report it. Raises :class:`~repro.errors.IoSubsystemError` when
    there is no checkpoint to corrupt.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    if manifest is None:
        raise IoSubsystemError(f"no checkpoint to corrupt in {directory}")
    arrays_path = _arrays_path(directory, manifest)
    if arrays_path is None or not arrays_path.exists():
        raise IoSubsystemError(f"no checkpoint arrays in {directory}")
    size = arrays_path.stat().st_size
    offset = size // 2
    with open(arrays_path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    return offset


@dataclass
class MMCheckpointState:
    """A format-v4 checkpoint: any MM algorithm's resumable state.

    ``arrays`` holds the O(n)/O(k) ndarray state under
    algorithm-chosen names; ``scalars`` holds JSON-representable
    scalar state (floats/ints/lists). ``iteration`` is the index to
    resume at.
    """

    iteration: int
    algorithm: str
    arrays: dict[str, np.ndarray]
    scalars: dict
    n_changed: int
    params: dict


def save_mm_checkpoint(
    directory: str | Path,
    state: MMCheckpointState,
    *,
    crash_point: str | None = None,
) -> Path:
    """Atomically persist a generic MM checkpoint (format v4).

    Identical durability protocol to :func:`save_checkpoint`
    (sequence-numbered arrays file, whole-file + per-array CRC32s,
    atomic manifest rename as the sole commit point, then GC), so the
    same injected ``crash_point`` stages hold the same guarantees.
    """
    if not state.arrays:
        raise IoSubsystemError(
            "an MM checkpoint must carry at least one array"
        )
    for name in state.arrays:
        if "/" in name:
            raise IoSubsystemError(
                f"MM checkpoint array name {name!r} must not contain '/'"
            )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    previous = _read_manifest(directory)
    seq = (previous.get("seq", 0) if previous else 0) + 1
    arrays_name = f"checkpoint-{seq:08d}.npz"

    mem = current_manager()
    staged = _stage_arrays(state.arrays, mem)
    try:
        with open(directory / arrays_name, "wb") as fh:
            np.savez(fh, **staged)
        file_crc = crc32_bytes((directory / arrays_name).read_bytes())
        array_crcs = {
            name: array_crc32(arr) for name, arr in staged.items()
        }
    finally:
        _release_arrays(staged, mem)
    if crash_point == "arrays-written":
        raise WorkerCrashError(
            "injected crash: arrays written, manifest not committed"
        )

    tmp_manifest = directory / (_MANIFEST + ".tmp")
    tmp_manifest.write_text(
        json.dumps(
            {
                "format_version": _MM_FORMAT_VERSION,
                "seq": seq,
                "arrays": arrays_name,
                "file_crc32": file_crc,
                "array_crc32": array_crcs,
                "algorithm": state.algorithm,
                "iteration": state.iteration,
                "n_changed": state.n_changed,
                "scalars": state.scalars,
                "params": state.params,
            }
        )
    )
    if crash_point == "manifest-tmp-written":
        raise WorkerCrashError(
            "injected crash: between manifest tmp-write and rename"
        )

    # The single atomic commit point.
    tmp_manifest.replace(directory / _MANIFEST)
    if crash_point == "committed-no-gc":
        raise WorkerCrashError(
            "injected crash: committed, stale arrays not collected"
        )

    for path in directory.glob("checkpoint-*.npz"):
        if path.name != arrays_name:
            path.unlink(missing_ok=True)
    return directory


def load_mm_checkpoint(directory: str | Path) -> MMCheckpointState:
    """Load a format-v4 MM checkpoint; raises if absent/corrupt.

    Rejects kmeans-format (v1-v3) checkpoints with a clear error
    instead of misreading them, mirroring :func:`load_checkpoint`'s
    rejection of v4.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    if manifest is None:
        if (directory / _MANIFEST).exists():
            raise IoSubsystemError(
                f"corrupt checkpoint manifest in {directory}"
            )
        raise IoSubsystemError(f"no checkpoint in {directory}")
    version = manifest.get("format_version")
    if version in (1, 2, _FORMAT_VERSION):
        raise IoSubsystemError(
            f"checkpoint in {directory} is a kmeans (v{version}) "
            f"checkpoint; load it with load_checkpoint"
        )
    if version != _MM_FORMAT_VERSION:
        raise IoSubsystemError(
            f"unsupported checkpoint version {version}"
        )
    arrays_path = _arrays_path(directory, manifest)
    if arrays_path is None or not arrays_path.exists():
        raise IoSubsystemError(
            f"checkpoint manifest in {directory} references missing "
            f"arrays"
        )
    file_crc = crc32_bytes(arrays_path.read_bytes())
    want = int(manifest["file_crc32"])
    if file_crc != want:
        raise CorruptionError(
            f"checkpoint arrays file {arrays_path.name} failed CRC32 "
            f"(stored {want:#010x}, computed {file_crc:#010x})"
        )
    arrays: dict[str, np.ndarray] = {}
    with np.load(arrays_path) as data:
        for name in data.files:
            arrays[name] = data[name].copy()
    for name, want_crc in manifest["array_crc32"].items():
        if name not in arrays:
            raise CorruptionError(
                f"checkpoint array {name!r} listed in the manifest "
                f"is missing from {arrays_path.name}"
            )
        got = array_crc32(arrays[name])
        if got != int(want_crc):
            raise CorruptionError(
                f"checkpoint array {name!r} failed CRC32 "
                f"(stored {int(want_crc):#010x}, computed {got:#010x})"
            )
    return MMCheckpointState(
        iteration=int(manifest["iteration"]),
        algorithm=str(manifest.get("algorithm", "")),
        arrays=arrays,
        scalars=dict(manifest.get("scalars", {})),
        n_changed=int(manifest["n_changed"]),
        params=manifest.get("params", {}),
    )


def discard_checkpoint(directory: str | Path) -> int:
    """Quarantine a corrupt checkpoint: remove all its files.

    Returns the number of files removed. After a discard the directory
    reports no checkpoint, so recovery falls back to a from-scratch
    restart -- slower in simulated time, but never resumes from bad
    state.
    """
    directory = Path(directory)
    removed = 0
    candidates = [directory / _MANIFEST, directory / (_MANIFEST + ".tmp"),
                  directory / _V1_ARRAYS]
    candidates.extend(directory.glob("checkpoint-*.npz"))
    for path in candidates:
        if path.exists():
            path.unlink()
            removed += 1
    return removed
