"""Lightweight checkpointing for semi-external runs.

FlashGraph "is also tolerant to in-memory failures, allowing recovery
in SEM routines through lightweight checkpointing" (Section 2). The
state a SEM k-means run needs to resume is exactly its O(n) in-memory
footprint: assignments, MTI upper bounds, the persistent per-cluster
sums/counts, current/previous centroids and the iteration counter. Row
data never needs checkpointing -- it is already durable on SSD.

Checkpoints are written atomically (tmp file + rename) so a crash
mid-write leaves the previous checkpoint intact. The paper disables
checkpointing during performance evaluation (Section 8.5), and so do
the benches; the integration tests exercise crash/recovery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import IoSubsystemError

_MANIFEST = "checkpoint.json"
_ARRAYS = "checkpoint.npz"
_FORMAT_VERSION = 1


@dataclass
class CheckpointState:
    """Everything needed to resume a knors run."""

    iteration: int
    centroids: np.ndarray
    prev_centroids: np.ndarray
    assignment: np.ndarray
    ub: np.ndarray | None  # None when pruning is off
    sums: np.ndarray | None
    counts: np.ndarray | None
    n_changed: int
    params: dict


def save_checkpoint(directory: str | Path, state: CheckpointState) -> Path:
    """Atomically persist a checkpoint, replacing any previous one."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays = {
        "centroids": state.centroids,
        "prev_centroids": state.prev_centroids,
        "assignment": state.assignment,
    }
    if state.ub is not None:
        arrays["ub"] = state.ub
    if state.sums is not None:
        arrays["sums"] = state.sums
        arrays["counts"] = state.counts
    tmp_arrays = directory / (_ARRAYS + ".tmp")
    with open(tmp_arrays, "wb") as fh:
        np.savez(fh, **arrays)
    tmp_manifest = directory / (_MANIFEST + ".tmp")
    tmp_manifest.write_text(
        json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "iteration": state.iteration,
                "n_changed": state.n_changed,
                "has_pruning_state": state.ub is not None,
                "params": state.params,
            }
        )
    )
    # Rename order matters: arrays first, manifest last -- a manifest
    # is only ever visible when its arrays are already in place.
    tmp_arrays.replace(directory / _ARRAYS)
    tmp_manifest.replace(directory / _MANIFEST)
    return directory


def load_checkpoint(directory: str | Path) -> CheckpointState:
    """Load the checkpoint in ``directory``; raises if absent/corrupt."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    arrays_path = directory / _ARRAYS
    if not manifest_path.exists() or not arrays_path.exists():
        raise IoSubsystemError(f"no checkpoint in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise IoSubsystemError(
            f"corrupt checkpoint manifest in {directory}: {exc}"
        ) from exc
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise IoSubsystemError(
            f"unsupported checkpoint version "
            f"{manifest.get('format_version')}"
        )
    with np.load(arrays_path) as data:
        has_pruning = manifest["has_pruning_state"]
        return CheckpointState(
            iteration=int(manifest["iteration"]),
            centroids=data["centroids"].copy(),
            prev_centroids=data["prev_centroids"].copy(),
            assignment=data["assignment"].copy(),
            ub=data["ub"].copy() if has_pruning else None,
            sums=data["sums"].copy() if has_pruning else None,
            counts=data["counts"].copy() if has_pruning else None,
            n_changed=int(manifest["n_changed"]),
            params=manifest["params"],
        )


def has_checkpoint(directory: str | Path) -> bool:
    """Is there a loadable checkpoint in ``directory``?"""
    directory = Path(directory)
    return (directory / _MANIFEST).exists() and (
        directory / _ARRAYS
    ).exists()
