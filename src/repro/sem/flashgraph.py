"""The modified-FlashGraph row engine (Section 6.1).

FlashGraph's ``page_row`` modification makes the engine matrix-aware: a
row's disk location is *computed* from its row-ID (no in-memory index),
so the only O(n) state is what the algorithm itself keeps. Per
iteration the engine:

1. receives the set of rows whose data the algorithm needs (everything
   except MTI clause-1 skips);
2. serves what it can from the row cache (no I/O request at all);
3. sends the misses to SAFS, which resolves pages against the page
   cache, merges adjacent reads, and charges the SSD array;
4. at scheduled refresh iterations, repopulates the row cache from the
   rows that just performed I/O (the paper's definition of *active*).

I/O is asynchronous and overlapped with computation: an iteration's
wall time is ``max(compute_span, io_service)`` plus the barrier and
reduction (the paper's knors turns compute-bound exactly when the
compute term wins -- Section 8.8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptionError
from repro.sem.rowcache import RowCache
from repro.sem.safs import Safs


@dataclass
class IoIterationStats:
    """Exact I/O accounting for one knors iteration."""

    iteration: int
    rows_needed: int
    row_cache_hits: int
    rows_requested: int  # misses: rows that issued an I/O request
    bytes_requested: int
    pages_needed: int
    page_cache_hits: int
    pages_from_ssd: int
    merged_requests: int
    bytes_read: int
    service_ns: float
    rc_refreshed: bool
    rc_admitted: int
    io_retries: int = 0  # injected-fault re-reads (see repro.faults)
    fault_delay_ns: float = 0.0  # fault time folded into service_ns
    service_async_ns: float = 0.0  # service through the async queue
    prefetchable: bool = False  # active set known before this fetch?


class RowEngine:
    """One dataset's semi-external I/O pipeline."""

    def __init__(
        self,
        safs: Safs,
        row_bytes: int,
        n_rows: int,
        *,
        row_cache: RowCache | None = None,
    ) -> None:
        self.safs = safs
        self.row_bytes = row_bytes
        self.n_rows = n_rows
        self.row_cache = row_cache

    def run_iteration(
        self, iteration: int, needs_data: np.ndarray, observer=None
    ) -> IoIterationStats:
        """Plan and account one iteration's row fetches.

        ``needs_data`` is the boolean row mask from the numerics (MTI
        clause 1 cleared means no I/O request -- "this is extremely
        significant because no I/O request is made for data").
        ``observer`` receives fault-plane events when the SAFS layer
        carries a fault plan.
        """
        needed = np.nonzero(np.asarray(needs_data, dtype=bool))[0]
        rc = self.row_cache
        # The prefetcher can only issue ahead of the compute front once
        # a refresh has revealed an active set -- judged on the state
        # *entering* this iteration, before any refresh below.
        prefetchable = rc is not None and rc.populated
        if rc is not None and needed.size:
            hit_mask = rc.lookup(needed)
            misses = needed[~hit_mask]
            rc_hits = int(hit_mask.sum())
        else:
            hit_mask = np.zeros(0, dtype=bool)
            misses = needed
            rc_hits = 0

        if (
            rc is not None
            and rc_hits > 0
            and self.safs.faults is not None
            and getattr(self.safs.faults, "corruption_enabled", False)
            and self.safs.faults.cache_corruption(iteration)
        ):
            misses, rc_hits = self._quarantine_cache_line(
                iteration, needed[hit_mask], misses, rc_hits, observer
            )

        batch = self.safs.fetch_rows(
            misses, self.row_bytes, iteration=iteration, observer=observer
        )

        refreshed = False
        admitted = 0
        if rc is not None and rc.should_refresh(iteration):
            # Active rows = rows that performed an I/O request this
            # iteration (the misses), per Section 6.2.2.
            admitted = rc.refresh(iteration, misses)
            refreshed = True

        return IoIterationStats(
            iteration=iteration,
            rows_needed=int(needed.size),
            row_cache_hits=rc_hits,
            rows_requested=int(misses.size),
            bytes_requested=batch.bytes_requested,
            pages_needed=batch.pages_needed,
            page_cache_hits=batch.page_cache_hits,
            pages_from_ssd=batch.pages_from_ssd,
            merged_requests=batch.merged_requests,
            bytes_read=batch.bytes_read,
            service_ns=batch.service_ns,
            rc_refreshed=refreshed,
            rc_admitted=admitted,
            io_retries=batch.io_retries,
            fault_delay_ns=batch.fault_delay_ns,
            service_async_ns=batch.service_async_ns,
            prefetchable=prefetchable,
        )

    def _quarantine_cache_line(
        self,
        iteration: int,
        hit_rows: np.ndarray,
        misses: np.ndarray,
        rc_hits: int,
        observer,
    ) -> tuple[np.ndarray, int]:
        """Detect an injected DRAM cache-line corruption and repair it.

        One deterministic cached row arrives with a flipped byte; its
        CRC32 always catches the flip. The poisoned line is evicted
        from the row cache and the row rejoins this iteration's miss
        list, so its repair -- a re-read through the clean SSD path --
        is charged as ordinary I/O in the same fetch.
        """
        rc = self.row_cache
        victim = int(hit_rows[iteration % hit_rows.size])
        clean = self.safs.integrity.verify_row(victim, corrupted=True)
        if clean:
            raise CorruptionError(
                f"row {victim} cache corruption escaped CRC32 "
                f"verification at iteration {iteration}"
            )
        if observer is None:
            from repro.runtime.observer import RunObserver

            observer = RunObserver()
        observer.on_fault(
            iteration, "corruption", "cache", {"row": victim}
        )
        observer.on_corruption(
            iteration, "cache-line", {"row": victim}
        )
        evicted = rc.evict(np.array([victim], dtype=np.int64))
        observer.on_quarantine(
            iteration, "cache-line", f"row-{victim}", {"evicted": evicted}
        )
        # Reroute the row through SAFS with this iteration's misses
        # (``misses`` is sorted ascending; keep it that way). The hit
        # tallied by the lookup above is undone: the line was poison,
        # the row really came from SSD.
        pos = int(np.searchsorted(misses, victim))
        misses = np.insert(misses, pos, victim)
        rc.hits -= 1
        rc.misses += 1
        observer.on_recovery(
            iteration, "corruption", "reread", {"row": victim}
        )
        return misses, rc_hits - 1
