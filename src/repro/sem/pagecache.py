"""SAFS page cache: LRU over filesystem pages.

SAFS "creates and manages a page cache that pins frequently touched
pages in memory" (Section 2). The cache is consulted *after* the row
cache and *before* the SSD array. Capacity is expressed in bytes and
rounded down to whole pages.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import IoSubsystemError


class PageCache:
    """LRU page cache keyed by page index."""

    def __init__(self, capacity_bytes: int, page_bytes: int) -> None:
        if page_bytes <= 0:
            raise IoSubsystemError(f"page_bytes must be > 0, got {page_bytes}")
        if capacity_bytes < 0:
            raise IoSubsystemError("capacity_bytes must be >= 0")
        self.page_bytes = page_bytes
        self.capacity_pages = capacity_bytes // page_bytes
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_bytes

    def lookup(self, page: int) -> bool:
        """Probe one page; a hit refreshes its recency."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, page: int) -> None:
        """Insert a page read from SSD, evicting LRU pages as needed."""
        if self.capacity_pages == 0:
            return
        if page in self._pages:
            self._pages.move_to_end(page)
            return
        while len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
        self._pages[page] = None

    def clear(self) -> None:
        """Drop everything (the benches do this between runs, matching
        the paper's "we drop all caches between runs")."""
        self._pages.clear()

    def contains(self, page: int) -> bool:
        """Non-mutating membership probe (for tests)."""
        return page in self._pages
