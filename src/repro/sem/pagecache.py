"""SAFS page cache: LRU over filesystem pages.

SAFS "creates and manages a page cache that pins frequently touched
pages in memory" (Section 2). The cache is consulted *after* the row
cache and *before* the SSD array. Capacity is expressed in bytes and
rounded down to whole pages.

The cache is an **array-based batch LRU**: residency is a sorted int64
key vector with a parallel last-touch stamp vector drawn from one
monotonic clock, so a whole iteration's page probe resolves as one
``searchsorted`` and eviction as one ``argpartition`` -- no per-page
Python-level dict traffic. Semantics are provably identical to the
classic OrderedDict LRU (``repro.perf.legacy.LegacyPageCache``): the
resident set is always the ``capacity`` most-recently-stamped distinct
pages, and stamps are assigned in probe/admit argument order exactly as
sequential operations would, so hit/miss tallies, contents and eviction
order all match element-for-element.

Storage is **double-buffered** on a :class:`~repro.mem.MemoryManager`:
the key/stamp vectors live in an active backing pair, and inserts and
compactions write into a spare pair which is then swapped in -- the
``np.insert``/boolean-mask reallocations of the original implementation
become scatter/``np.compress`` writes into pooled blocks, so a
steady-state iteration admits and evicts with zero fresh allocations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IoSubsystemError
from repro.mem import MemoryManager, current_manager

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class PageCache:
    """Batch LRU page cache keyed by page index."""

    def __init__(
        self,
        capacity_bytes: int,
        page_bytes: int,
        *,
        mem: MemoryManager | None = None,
    ) -> None:
        if page_bytes <= 0:
            raise IoSubsystemError(f"page_bytes must be > 0, got {page_bytes}")
        if capacity_bytes < 0:
            raise IoSubsystemError("capacity_bytes must be >= 0")
        self.page_bytes = page_bytes
        self.capacity_pages = capacity_bytes // page_bytes
        self.mem = mem if mem is not None else current_manager()
        self._size = 0  # resident pages; prefix of the active pair
        self._kbuf: np.ndarray | None = None  # active keys backing
        self._sbuf: np.ndarray | None = None  # active stamps backing
        self._kspare: np.ndarray | None = None
        self._sspare: np.ndarray | None = None
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_bytes

    @property
    def _keys(self) -> np.ndarray:
        """Sorted resident pages (prefix view of the active backing)."""
        if self._kbuf is None:
            return _EMPTY_I64
        return self._kbuf[: self._size]

    @property
    def _stamps(self) -> np.ndarray:
        """Parallel last-touch stamps for :attr:`_keys`."""
        if self._sbuf is None:
            return _EMPTY_I64
        return self._sbuf[: self._size]

    def _spare_pair(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Length-``n`` views of the spare backing pair, grown to fit.

        The backing may exceed ``n`` (capacity is kept across swaps);
        the returned views are exactly ``n`` entries."""
        self._kspare = self.mem.ensure_capacity(
            self._kspare, (n,), np.int64, tag="pagecache/keys"
        )
        self._sspare = self.mem.ensure_capacity(
            self._sspare, (n,), np.int64, tag="pagecache/stamps"
        )
        return self._kspare[:n], self._sspare[:n]

    def _swap(self, n: int) -> None:
        """Promote the spare pair to active with ``n`` live entries."""
        self._kbuf, self._kspare = self._kspare, self._kbuf
        self._sbuf, self._sspare = self._sspare, self._sbuf
        self._size = n

    def _find(self, pages: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(insertion positions, hit mask) for ``pages`` in ``_keys``."""
        keys = self._keys
        pos = np.searchsorted(keys, pages)
        inb = pos < keys.size
        hit = np.zeros(pages.size, dtype=bool)
        hit[inb] = keys[pos[inb]] == pages[inb]
        return pos, hit

    def lookup_batch(self, pages: np.ndarray) -> np.ndarray:
        """Probe many pages at once; hits refresh recency in probe order.

        Returns the boolean hit mask. Equivalent to calling
        ``lookup`` element-by-element: each hit is restamped at its
        position in the argument, so a page probed twice keeps the
        recency of its *last* probe.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return np.zeros(0, dtype=bool)
        pos, hit = self._find(pages)
        n_hits = int(np.count_nonzero(hit))
        self.hits += n_hits
        self.misses += int(pages.size) - n_hits
        if n_hits:
            # Fancy assignment applies in argument order, so duplicate
            # probes of one page leave its last (most recent) stamp.
            self._stamps[pos[hit]] = self._clock + np.arange(n_hits)
            self._clock += n_hits
        return hit

    def admit_batch(self, pages: np.ndarray) -> None:
        """Insert pages read from SSD, evicting LRU pages as needed.

        Equivalent to calling ``admit`` element-by-element: every page
        ends up stamped at its last position in the argument (present
        pages are merely restamped), then the lowest-stamped overflow
        is evicted. The sequential loop interleaves its evictions with
        the inserts, but the survivors -- the ``capacity`` highest
        stamps -- are the same either way.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if self.capacity_pages == 0 or pages.size == 0:
            if pages.size:
                self._clock += int(pages.size)
            return
        # Stamp by last occurrence: reverse + unique keeps, for each
        # distinct page, its first index in the reversed view == its
        # last position in the batch.
        rev = pages[::-1]
        uniq, rev_idx = np.unique(rev, return_index=True)
        last_pos = int(pages.size) - 1 - rev_idx
        new_stamps = self._clock + last_pos
        self._clock += int(pages.size)

        pos, present = self._find(uniq)
        self._stamps[pos[present]] = new_stamps[present]
        absent = ~present
        if absent.any():
            # Merge the absent (sorted, distinct) keys by scattering
            # into the spare pair: an element inserted before original
            # position p lands at p + (number of insertions before it),
            # exactly where np.insert would put it.
            n_ins = int(np.count_nonzero(absent))
            old_n = self._size
            new_n = old_n + n_ins
            nk, ns = self._spare_pair(new_n)
            ins_at = pos[absent] + np.arange(n_ins)
            taken = np.zeros(new_n, dtype=bool)
            taken[ins_at] = True
            nk[ins_at] = uniq[absent]
            ns[ins_at] = new_stamps[absent]
            nk[~taken] = self._keys
            ns[~taken] = self._stamps
            self._swap(new_n)
        excess = self._size - self.capacity_pages
        if excess > 0:
            evict = np.argpartition(self._stamps, excess - 1)[:excess]
            keep = np.ones(self._size, dtype=bool)
            keep[evict] = False
            self._compact(keep)

    def _compact(self, keep: np.ndarray) -> None:
        """Drop entries where ``keep`` is False, preserving order."""
        n_keep = int(np.count_nonzero(keep))
        nk, ns = self._spare_pair(max(n_keep, 1))
        np.compress(keep, self._keys, out=nk[:n_keep])
        np.compress(keep, self._stamps, out=ns[:n_keep])
        self._swap(n_keep)

    def lookup(self, page: int) -> bool:
        """Probe one page; a hit refreshes its recency."""
        return bool(self.lookup_batch(np.array([page], dtype=np.int64))[0])

    def admit(self, page: int) -> None:
        """Insert a page read from SSD, evicting LRU pages as needed."""
        self.admit_batch(np.array([page], dtype=np.int64))

    def clear(self) -> None:
        """Drop everything (the benches do this between runs, matching
        the paper's "we drop all caches between runs"). The backing
        blocks stay pooled for the next run."""
        self._size = 0

    def release(self) -> None:
        """Return both backing pairs to the owning manager."""
        for arr in (self._kbuf, self._sbuf, self._kspare, self._sspare):
            self.mem.free(arr)
        self._kbuf = self._sbuf = None
        self._kspare = self._sspare = None
        self._size = 0

    def discard_batch(self, pages: np.ndarray) -> int:
        """Quarantine: evict ``pages`` without touching hit/miss tallies.

        Used by the integrity layer when a resident page fails its
        checksum -- the poisoned copy must leave the cache so the next
        access re-reads a clean one from SSD. Returns how many of the
        requested pages were actually resident.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0 or self._size == 0:
            return 0
        pos, hit = self._find(np.unique(pages))
        if not hit.any():
            return 0
        keep = np.ones(self._size, dtype=bool)
        keep[pos[hit]] = False
        self._compact(keep)
        return int(np.count_nonzero(hit))

    def contains(self, page: int) -> bool:
        """Non-mutating membership probe (for tests)."""
        keys = self._keys
        pos = int(np.searchsorted(keys, page))
        return pos < keys.size and int(keys[pos]) == page

    def pages_lru_order(self) -> list[int]:
        """Resident pages, least-recently-used first (for conformance)."""
        order = np.argsort(self._stamps, kind="stable")
        return self._keys[order].tolist()
