"""repro.mem: the pluggable memory-manager plane.

See :mod:`repro.mem.manager` for the protocol and the arena, and
:mod:`repro.mem.budget` for the byte-capped spilling manager.
"""

from repro.mem.budget import BudgetedManager
from repro.mem.manager import (
    DEFAULT_MANAGER,
    MANAGER_NAMES,
    ArenaManager,
    MemoryCounters,
    MemoryManager,
    MemoryPoolStats,
    NumpyManager,
    build_manager,
    check_manager,
    current_manager,
    use_manager,
)

__all__ = [
    "ArenaManager",
    "BudgetedManager",
    "DEFAULT_MANAGER",
    "MANAGER_NAMES",
    "MemoryCounters",
    "MemoryManager",
    "MemoryPoolStats",
    "NumpyManager",
    "build_manager",
    "check_manager",
    "current_manager",
    "use_manager",
]
