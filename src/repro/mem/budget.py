"""The budgeted manager: a hard byte cap with LRU spill to simulated
SSD.

``BudgetedManager`` makes "this run fits in X bytes" a testable
contract. It is an :class:`~repro.mem.manager.ArenaManager` whose
*resident* footprint -- live blocks plus pooled free blocks, minus
blocks currently spilled -- never exceeds ``budget_bytes``:

* an allocation that would breach the cap first drops pooled free
  blocks (really releasing them), then spills the coldest live
  buffers (LRU order, never the buffer being allocated or touched)
  to the simulated SSD;
* spilling charges honest simulated I/O time from the same
  :class:`~repro.simhw.ssd.SsdArray` service model SAFS uses
  (page-granular, ``max(bandwidth, IOPS)`` term; the array model is
  symmetric, so a spill-out write and a spill-in read price alike).
  The time accrues in ``spill_ns`` on the counters rollup -- not in
  the iteration records -- so a run's ``sim_ns`` and results stay
  bit-identical across managers;
* when even spilling everything else cannot make room (a single
  request larger than the whole budget), the manager raises a typed
  :class:`~repro.errors.MemoryBudgetError`. It never silently grows.

Because the SSD is simulated, a "spilled" buffer's bytes physically
remain in the ndarray -- the spill is accounting plus simulated time.
That is exactly what keeps results bit-identical by construction: a
stale ``touch`` cannot corrupt values, only under-report I/O time.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.errors import MemoryBudgetError
from repro.mem.manager import ArenaManager, MemoryPoolStats


class BudgetedManager(ArenaManager):
    """Arena with a hard resident-byte cap and LRU cold-buffer spill."""

    name = "budget"

    def __init__(self, budget_bytes: int, *, ssd: Any = None) -> None:
        super().__init__()
        if budget_bytes <= 0:
            raise MemoryBudgetError(
                f"budget_bytes must be > 0, got {budget_bytes}"
            )
        if ssd is None:
            from repro.simhw.ssd import OCZ_INTREPID_ARRAY

            ssd = OCZ_INTREPID_ARRAY
        self.budget_bytes = int(budget_bytes)
        self.ssd = ssd
        # LRU order over live block ids: dict insertion order, oldest
        # first; ``touch``/``alloc`` move an id to the hot end.
        self._lru: dict[int, None] = {}
        self._spilled: set[int] = set()
        self.spilled_bytes = 0

    # -- accounting ---------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes actually held in (simulated) RAM right now."""
        return self.live_bytes + self.pooled_bytes - self.spilled_bytes

    def _io_ns(self, nbytes: int) -> float:
        pages = max(1, math.ceil(nbytes / self.ssd.page_bytes))
        return float(self.ssd.read(1, pages).service_ns)

    def _spill_one(self, exclude: frozenset[int]) -> bool:
        """Spill the coldest unspilled live block; False if none left."""
        for key in self._lru:
            if key in self._spilled or key in exclude:
                continue
            block = self._live[key]
            ns = self._io_ns(block.size_class)
            self._spilled.add(key)
            self.spilled_bytes += block.size_class
            self.spill_count += 1
            self.spill_bytes += block.size_class
            self.spill_ns += ns
            self._emit_spill(block.tag, block.size_class, ns, "out")
            return True
        return False

    def _make_room(self, need: int, exclude: frozenset[int]) -> None:
        """Ensure ``need`` more resident bytes fit under the cap."""
        if need > self.budget_bytes:
            raise MemoryBudgetError(
                f"allocation of {need} backing bytes exceeds the whole "
                f"budget of {self.budget_bytes} bytes"
            )
        # Pooled free blocks first: releasing memory beats spilling.
        while (
            self.resident_bytes + need > self.budget_bytes
            and self.pooled_bytes > 0
        ):
            cls = max(c for c, b in self._free.items() if b)
            self._free[cls].pop()
            self.pooled_bytes -= cls
        while self.resident_bytes + need > self.budget_bytes:
            if not self._spill_one(exclude):
                raise MemoryBudgetError(
                    f"cannot fit {need} more bytes: "
                    f"{self.resident_bytes} resident of "
                    f"{self.budget_bytes} budget and nothing left to "
                    f"spill"
                )

    # -- allocation protocol ------------------------------------------

    def alloc(self, shape, dtype=np.float64, *, tag="", zero=False):
        from repro.mem.manager import _nbytes, _round_shape, _size_class

        cls = _size_class(
            _nbytes(_round_shape(shape), np.dtype(dtype))
        )
        # Reusing a pooled block of this class adds nothing resident.
        pooled_hit = bool(self._free.get(cls))
        if not pooled_hit:
            self._make_room(cls, frozenset())
        view = super().alloc(shape, dtype, tag=tag, zero=zero)
        self._lru[id(view)] = None
        return view

    def free(self, arr):
        if arr is None:
            return
        key = id(arr)
        block = self._live.get(key)
        if block is not None and block.view is arr:
            self._lru.pop(key, None)
            if key in self._spilled:
                # Freed while cold: the backing block returns to the
                # pool, so it becomes resident again -- without a
                # spill-in charge (nobody read the bytes back).
                self._spilled.discard(key)
                self.spilled_bytes -= block.size_class
        super().free(arr)

    def touch(self, arr):
        if arr is None:
            return
        key = id(arr)
        block = self._live.get(key)
        if block is None or block.view is not arr:
            return
        if key in self._spilled:
            # Spill-in: the bytes come back from SSD before use.
            self._spilled.discard(key)
            self.spilled_bytes -= block.size_class
            self._make_room(0, frozenset((key,)))
            ns = self._io_ns(block.size_class)
            self.spill_count += 1
            self.spill_bytes += block.size_class
            self.spill_ns += ns
            self._emit_spill(block.tag, block.size_class, ns, "in")
        self._lru.pop(key, None)
        self._lru[key] = None

    def _bump_peak(self):
        # The cap governs (and peak reports) *resident* bytes; spilled
        # blocks live on the simulated SSD, not in RAM.
        resident = self.resident_bytes
        if resident > self.peak_bytes:
            self.peak_bytes = resident

    def pool_stats(self) -> MemoryPoolStats:
        stats = super().pool_stats()
        return MemoryPoolStats(
            manager=self.name,
            live_blocks=stats.live_blocks,
            live_bytes=stats.live_bytes,
            pooled_blocks=stats.pooled_blocks,
            pooled_bytes=stats.pooled_bytes,
            peak_bytes=stats.peak_bytes,
        )
