"""The memory-manager plane: who owns the library's large buffers.

Every long-lived or per-iteration array in the system -- workspace
norm/GEMM-operand caches, distance-block buffers, accumulation
scratch, per-thread partial centroids, the SEM cache backing arrays,
allreduce payload staging and checkpoint assembly buffers -- is
allocated through a :class:`MemoryManager` instead of bare
``np.empty``/``np.zeros`` calls. The protocol follows the external
memory-manager plugin design of numba's NBEP 7 (a small
alloc/free/stats surface the host library routes every allocation
through, so a plugin can substitute its own pooling policy without the
kernels knowing).

Three managers ship:

* :class:`NumpyManager` -- today's behavior: every ``alloc`` is a
  fresh numpy array and ``free`` merely drops the bookkeeping. The
  default; all results are bit-identical to the pre-plane library by
  construction.
* :class:`ArenaManager` -- power-of-two size-class free lists. A freed
  buffer's backing block parks in its size class and the next ``alloc``
  of that class reuses it, so steady-state hot loops perform **zero**
  new backing allocations after the first iteration (pinned by the
  allocation-count regression suite). Reuse is safe because ``alloc``
  has ``np.empty`` semantics -- contents are unspecified and every
  caller fully writes its buffers -- and ``zero=True`` requests are
  explicitly zero-filled, so results are bit-identical to
  :class:`NumpyManager`.
* :class:`~repro.mem.budget.BudgetedManager` -- an arena with a hard
  byte cap: allocations beyond the cap spill the coldest (LRU)
  resident buffers to the simulated SSD, charged honest simulated I/O
  time, or raise :class:`~repro.errors.MemoryBudgetError` when even an
  empty arena cannot host the request. Never silent growth.

The two-plane invariant extends to this plane: a manager may change
*where bytes live* and *how much simulated time* spilling costs, but
never the values the kernels compute -- results are bit-identical
across all three managers, faults included.

Threading model
---------------

Components default to the *current* manager -- a module-level stack
manipulated by :func:`use_manager` -- at construction time, so the
drivers opt a whole run into a manager with one ``with`` block and no
parameter threading through every kernel. The default stack bottom is
a shared :class:`NumpyManager`, i.e. exactly the historical behavior.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.errors import ConfigError

#: Accepted values for the ``--mem`` manager selector.
MANAGER_NAMES = ("numpy", "arena", "budget")

#: Smallest backing block an arena hands out; sub-64 B requests round
#: up so tiny buffers (a ``(k,)`` counts vector) still pool cleanly.
MIN_BLOCK_BYTES = 64


def check_manager(name: str) -> str:
    """Validate a ``--mem`` manager name and pass it through."""
    if name not in MANAGER_NAMES:
        raise ConfigError(
            f"mem manager must be one of {MANAGER_NAMES}, got {name!r}"
        )
    return name


@dataclass(frozen=True)
class MemoryCounters:
    """One run's memory-footprint rollup (the Table-1-style report).

    ``peak_bytes`` counts backing bytes the manager held at the high-
    water mark (live + pooled); ``reuse_rate`` is the fraction of
    allocations served from a free list instead of fresh backing
    memory. The spill tallies are zero outside
    :class:`~repro.mem.budget.BudgetedManager`; ``spill_ns`` is
    reported here rather than folded into the iteration records, so a
    run's ``sim_ns`` stays bit-identical across managers.
    """

    manager: str
    peak_bytes: int
    live_bytes: int
    n_allocs: int
    n_frees: int
    n_reuses: int
    backing_allocs: int
    spill_count: int = 0
    spill_bytes: int = 0
    spill_ns: float = 0.0
    budget_bytes: int | None = None

    @property
    def reuse_rate(self) -> float:
        return self.n_reuses / self.n_allocs if self.n_allocs else 0.0

    @property
    def budget_utilization(self) -> float:
        """Resident bytes as a fraction of the budget (0.0 unbudgeted).

        The elastic autoscaler's memory-pressure signal: a manager
        running hot against its byte cap is about to spill, and a
        spilling machine wants a peer more than a bigger EWMA.
        """
        if not self.budget_bytes:
            return 0.0
        return self.live_bytes / self.budget_bytes

    def to_dict(self) -> dict:
        """JSON-safe rollup for benches and the CLI footprint line."""
        return {
            "manager": self.manager,
            "peak_bytes": self.peak_bytes,
            "live_bytes": self.live_bytes,
            "n_allocs": self.n_allocs,
            "n_frees": self.n_frees,
            "n_reuses": self.n_reuses,
            "reuse_rate": self.reuse_rate,
            "backing_allocs": self.backing_allocs,
            "spill_count": self.spill_count,
            "spill_bytes": self.spill_bytes,
            "spill_ns": self.spill_ns,
            "budget_bytes": self.budget_bytes,
        }


@dataclass(frozen=True)
class MemoryPoolStats:
    """A manager's instantaneous pool state (NBEP-7 ``get_memory_info``
    analog): what is handed out vs parked in free lists right now."""

    manager: str
    live_blocks: int
    live_bytes: int
    pooled_blocks: int
    pooled_bytes: int
    peak_bytes: int


def _round_shape(shape: int | Sequence[int]) -> tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        return (int(shape),)
    return tuple(int(s) for s in shape)


def _nbytes(shape: tuple[int, ...], dtype: np.dtype) -> int:
    n = 1
    for s in shape:
        n *= s
    return n * dtype.itemsize


class MemoryManager:
    """Base manager: observer fan-out, counters, and the shared
    ``ensure_capacity`` grow-guard. Subclasses implement ``alloc`` /
    ``free`` policy."""

    name = "base"

    def __init__(self) -> None:
        self._observers: list[Any] = []
        self.n_allocs = 0
        self.n_frees = 0
        self.n_reuses = 0
        self.unknown_frees = 0
        self.live_bytes = 0
        self.pooled_bytes = 0
        self.peak_bytes = 0
        self.backing_allocs = 0
        self.spill_count = 0
        self.spill_bytes = 0
        self.spill_ns = 0.0
        self.budget_bytes: int | None = None

    # -- observer bus -------------------------------------------------

    def attach_observer(self, observer: Any) -> None:
        """Route ``on_alloc``/``on_free``/``on_spill`` events to a
        :class:`~repro.runtime.observer.RunObserver`."""
        if observer not in self._observers:
            self._observers.append(observer)

    def _emit_alloc(self, tag: str, nbytes: int, reused: bool) -> None:
        for obs in self._observers:
            obs.on_alloc(tag, nbytes, reused)

    def _emit_free(self, tag: str, nbytes: int) -> None:
        for obs in self._observers:
            obs.on_free(tag, nbytes)

    def _emit_spill(
        self, tag: str, nbytes: int, ns: float, direction: str
    ) -> None:
        for obs in self._observers:
            obs.on_spill(tag, nbytes, ns, direction)

    # -- allocation protocol ------------------------------------------

    def alloc(
        self,
        shape: int | Sequence[int],
        dtype: Any = np.float64,
        *,
        tag: str = "",
        zero: bool = False,
    ) -> np.ndarray:
        """A writable array of ``shape``/``dtype``. Contents are
        unspecified (``np.empty`` semantics) unless ``zero=True``."""
        raise NotImplementedError

    def free(self, arr: np.ndarray | None) -> None:
        """Return an array obtained from :meth:`alloc`. ``None`` and
        foreign arrays are tolerated (counted, not raised) so release
        paths need no ownership bookkeeping of their own."""
        raise NotImplementedError

    def touch(self, arr: np.ndarray | None) -> None:
        """Mark an owned buffer as recently used (LRU hint). A no-op
        outside the budgeted manager."""

    def ensure_capacity(
        self,
        arr: np.ndarray | None,
        shape: int | Sequence[int],
        dtype: Any = np.float64,
        *,
        tag: str = "",
    ) -> np.ndarray:
        """The one grow-guard: return ``arr`` if it can hold ``shape``,
        else free it and allocate a larger buffer.

        Replaces the inline ``if m > capacity: np.empty(...)`` pattern
        previously repeated across workspace/scratch sites. The
        returned array is the *full* capacity buffer; callers slice
        the view they need. Existing contents are not preserved across
        a grow (no call site relies on that).
        """
        shape = _round_shape(shape)
        dtype = np.dtype(dtype)
        if (
            arr is not None
            and arr.dtype == dtype
            and arr.ndim == len(shape)
            and all(
                have >= need for have, need in zip(arr.shape, shape)
            )
        ):
            self.touch(arr)
            return arr
        if arr is not None:
            self.free(arr)
        return self.alloc(shape, dtype, tag=tag)

    # -- reporting ----------------------------------------------------

    def counters(self) -> MemoryCounters:
        return MemoryCounters(
            manager=self.name,
            peak_bytes=self.peak_bytes,
            live_bytes=self.live_bytes,
            n_allocs=self.n_allocs,
            n_frees=self.n_frees,
            n_reuses=self.n_reuses,
            backing_allocs=self.backing_allocs,
            spill_count=self.spill_count,
            spill_bytes=self.spill_bytes,
            spill_ns=self.spill_ns,
            budget_bytes=self.budget_bytes,
        )

    def _bump_peak(self) -> None:
        resident = self.live_bytes + self.pooled_bytes
        if resident > self.peak_bytes:
            self.peak_bytes = resident


class NumpyManager(MemoryManager):
    """The bit-identical default: plain numpy allocation, tracked.

    ``free`` only adjusts the accounting -- the array is released by
    the interpreter when its last reference drops, exactly as before
    the memory plane existed.
    """

    name = "numpy"

    def alloc(self, shape, dtype=np.float64, *, tag="", zero=False):
        shape = _round_shape(shape)
        dtype = np.dtype(dtype)
        arr = (
            np.zeros(shape, dtype=dtype)
            if zero
            else np.empty(shape, dtype=dtype)
        )
        self.n_allocs += 1
        self.backing_allocs += 1
        self.live_bytes += arr.nbytes
        self._bump_peak()
        self._emit_alloc(tag, arr.nbytes, False)
        return arr

    def free(self, arr):
        if arr is None:
            return
        self.n_frees += 1
        self.live_bytes = max(0, self.live_bytes - arr.nbytes)
        self._emit_free("", arr.nbytes)

    def pool_stats(self) -> MemoryPoolStats:
        return MemoryPoolStats(
            manager=self.name,
            live_blocks=self.n_allocs - self.n_frees,
            live_bytes=self.live_bytes,
            pooled_blocks=0,
            pooled_bytes=0,
            peak_bytes=self.peak_bytes,
        )


@dataclass
class _LiveBlock:
    """One handed-out arena view and its backing block."""

    view: np.ndarray
    raw: np.ndarray  # uint8 backing block, len == size_class
    size_class: int
    tag: str


def _size_class(nbytes: int) -> int:
    """Smallest power-of-two block >= ``nbytes`` (floor 64 B)."""
    if nbytes <= MIN_BLOCK_BYTES:
        return MIN_BLOCK_BYTES
    return 1 << (int(nbytes) - 1).bit_length()


class ArenaManager(MemoryManager):
    """Size-class free-list arena: freed blocks are reused, not
    released.

    ``alloc`` rounds the request up to a power-of-two backing block
    and hands out a ``raw[:nbytes].view(dtype).reshape(shape)`` view;
    ``free`` parks the backing block on its size class's free list.
    ``backing_allocs`` counts only *fresh* backing blocks -- the
    steady-state regression suite asserts it stops moving after the
    first iteration of every hot loop.
    """

    name = "arena"

    def __init__(self) -> None:
        super().__init__()
        self._free: dict[int, list[np.ndarray]] = {}
        self._live: dict[int, _LiveBlock] = {}

    def alloc(self, shape, dtype=np.float64, *, tag="", zero=False):
        shape = _round_shape(shape)
        dtype = np.dtype(dtype)
        nbytes = _nbytes(shape, dtype)
        cls = _size_class(nbytes)
        bucket = self._free.get(cls)
        if bucket:
            raw = bucket.pop()
            reused = True
            self.n_reuses += 1
            self.pooled_bytes -= cls
        else:
            raw = np.empty(cls, dtype=np.uint8)
            reused = False
            self.backing_allocs += 1
        view = raw[:nbytes].view(dtype).reshape(shape)
        if zero:
            view.fill(0)
        self._live[id(view)] = _LiveBlock(view, raw, cls, tag)
        self.n_allocs += 1
        self.live_bytes += cls
        self._bump_peak()
        self._emit_alloc(tag, nbytes, reused)
        return view

    def free(self, arr):
        if arr is None:
            return
        block = self._live.pop(id(arr), None)
        if block is None or block.view is not arr:
            if block is not None:  # id collision: not ours after all
                self._live[id(arr)] = block
            self.unknown_frees += 1
            return
        self.n_frees += 1
        self.live_bytes -= block.size_class
        self.pooled_bytes += block.size_class
        self._free.setdefault(block.size_class, []).append(block.raw)
        self._emit_free(block.tag, arr.nbytes)

    def owns(self, arr: np.ndarray) -> bool:
        """Is ``arr`` a live view handed out by this arena?"""
        block = self._live.get(id(arr))
        return block is not None and block.view is arr

    def trim(self) -> int:
        """Release every pooled free block; returns bytes released."""
        released = self.pooled_bytes
        self._free.clear()
        self.pooled_bytes = 0
        return released

    def pool_stats(self) -> MemoryPoolStats:
        return MemoryPoolStats(
            manager=self.name,
            live_blocks=len(self._live),
            live_bytes=self.live_bytes,
            pooled_blocks=sum(len(b) for b in self._free.values()),
            pooled_bytes=self.pooled_bytes,
            peak_bytes=self.peak_bytes,
        )


# ---------------------------------------------------------------------
# The current-manager stack.
# ---------------------------------------------------------------------

#: The bottom of the stack: the always-available bit-identical default.
DEFAULT_MANAGER = NumpyManager()

_stack: list[MemoryManager] = [DEFAULT_MANAGER]


def current_manager() -> MemoryManager:
    """The manager components bind to when none is passed explicitly."""
    return _stack[-1]


@contextmanager
def use_manager(manager: MemoryManager | None) -> Iterator[MemoryManager]:
    """Make ``manager`` the current manager for the ``with`` body.

    ``None`` is a no-op pass-through (the current manager stays), so
    drivers can wrap their build-and-run block unconditionally.
    """
    if manager is None:
        yield current_manager()
        return
    _stack.append(manager)
    try:
        yield manager
    finally:
        _stack.pop()


def build_manager(
    spec: str | MemoryManager | None,
    *,
    budget_bytes: int | None = None,
    ssd: Any = None,
) -> MemoryManager | None:
    """Resolve a ``--mem`` spec into a manager instance.

    ``None`` passes through (keep the current manager); an instance
    passes through unchanged; a name builds a fresh manager.
    ``budget_bytes``/``ssd`` apply to ``"budget"`` only.
    """
    if spec is None or isinstance(spec, MemoryManager):
        return spec
    check_manager(spec)
    if spec == "numpy":
        return NumpyManager()
    if spec == "arena":
        return ArenaManager()
    from repro.mem.budget import BudgetedManager

    if budget_bytes is None:
        raise ConfigError(
            "mem='budget' needs budget_bytes (CLI: --mem-budget-mb)"
        )
    return BudgetedManager(budget_bytes, ssd=ssd)
