"""Numerics sources: the algorithm side of an execution backend.

A source produces, per iteration, the exact per-row work statistics
(:class:`StepStats`) the hardware plane prices. Two families exist:

* :class:`KmeansSource` wraps the library's own
  :class:`~repro.drivers.common.NumericsLoop` (Lloyd's / MTI / Elkan);
* :class:`RowAlgorithmSource` wraps any object implementing the
  generalized-framework ``RowAlgorithm`` contract.

Both are consumed identically by the backends, which is what lets
knori/knors and the generic ``run_numa``/``run_sem`` share one loop
body.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.data.matrixfile import MatrixFile
from repro.errors import ConfigError, DatasetError
from repro.runtime.memory import state_bytes_per_row


@dataclass
class StepStats:
    """One iteration's exact outputs, uniform across source families."""

    #: Compute per row, in point-centroid distance-column equivalents.
    dist_per_row: np.ndarray
    #: Rows whose data was touched (False = skipped wholesale; in SEM
    #: mode a False row issues no I/O request).
    needs_data: np.ndarray
    #: Observable progress (points that changed membership, ...).
    n_changed: int
    #: Centroid displacement since last iteration (None when the
    #: source does not track it, e.g. iteration 0 or non-k-means).
    motion: np.ndarray | None = None
    #: Pruning breakdown; zero for unpruned/non-k-means sources.
    clause1_rows: int = 0
    clause2_pruned: int = 0
    clause3_pruned: int = 0
    #: Bytes of algorithm state touched per active row.
    state_bytes: int = 8


@runtime_checkable
class NumericsSource(Protocol):
    """What a backend pulls from each iteration."""

    def step(self, iteration: int) -> StepStats:  # pragma: no cover
        ...


class KmeansSource:
    """Adapts a :class:`NumericsLoop` to the source contract.

    Owns the pruning-mode-aware per-row state-byte rate (previously a
    hardcoded ``12 if pruning else 4`` in every driver, which charged
    Elkan the MTI rate despite its O(k) bound row per point).
    """

    def __init__(self, loop: Any, k: int) -> None:
        self.loop = loop
        self.state_bytes = state_bytes_per_row(loop.pruning, k)

    def step(self, iteration: int) -> StepStats:
        num = self.loop.step()
        return StepStats(
            dist_per_row=num.dist_per_row,
            needs_data=num.needs_data,
            n_changed=num.n_changed,
            motion=num.motion,
            clause1_rows=num.clause1_rows,
            clause2_pruned=num.clause2_pruned,
            clause3_pruned=num.clause3_pruned,
            state_bytes=self.state_bytes,
        )


class RowAlgorithmSource:
    """Adapts a framework ``RowAlgorithm`` to the source contract."""

    def __init__(self, algorithm: Any, x: np.ndarray) -> None:
        self.algorithm = algorithm
        self.x = x
        self.n = x.shape[0]

    def step(self, iteration: int) -> StepStats:
        work = self.algorithm.iteration(self.x)
        if work.compute_units.shape != (self.n,):
            raise ConfigError(
                f"compute_units shape {work.compute_units.shape} != "
                f"({self.n},)"
            )
        if work.needs_data.shape != (self.n,):
            raise ConfigError(
                f"needs_data shape {work.needs_data.shape} != ({self.n},)"
            )
        return StepStats(
            dist_per_row=work.compute_units,
            needs_data=work.needs_data,
            n_changed=work.n_changed,
            motion=None,
            state_bytes=work.state_bytes_per_row,
        )


def resolve_row_data(
    data: np.ndarray | str | Path | MatrixFile,
) -> tuple[np.ndarray, int, int]:
    """Resolve a data source to an indexable array plus ``(n, d)``.

    Paths resolve to a memmap-backed view, so row accesses during a
    SEM run read from the real file at page granularity. Shared by
    knors and the generic ``run_sem``.
    """
    if isinstance(data, MatrixFile):
        return data.row_view(), data.n, data.d
    if isinstance(data, (str, Path)):
        mf = MatrixFile(data)
        return mf.row_view(), mf.n, mf.d
    x = np.asarray(data, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"data must be 2-D, got shape {x.shape}")
    return x, x.shape[0], x.shape[1]
