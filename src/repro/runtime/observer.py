"""Run observability: trace-event hooks threaded through the runtime.

Every execution backend reports the same event stream while an
:class:`~repro.runtime.loop.IterationLoop` drives it:

``on_run_start`` → (``on_iteration_start`` → [``on_io_issue`` →
``on_io``] → ``on_task_trace``\\* → [``on_io_complete``] →
[``on_collective``] → ``on_iteration_end`` → [``on_checkpoint``])\\* →
``on_run_end``

The bracketed I/O triple is the SEM backend's: ``on_io_issue`` marks
the iteration's reads entering the request queue (before compute),
``on_io`` carries the planned accounting, and ``on_io_complete`` lands
after the compute trace with the overlap split (how much service time
the prefetcher hid vs how long compute blocked).

Fault injection (:mod:`repro.faults`) adds a second family that can
appear anywhere inside an iteration: ``on_fault`` (a fault fired),
``on_retry`` (one recovery attempt, charged simulated time) and
``on_recovery`` (the fault was answered -- retries succeeded, a
checkpoint was restored, shards were reassigned). Every ``on_fault``
from a recoverable fault is eventually followed by an ``on_recovery``
for the same site.

The resilience layer (:mod:`repro.resilience`) extends that family:
``on_corruption`` (a CRC32 verification failed -- corruption was
*detected*, never silently clustered on), ``on_quarantine`` (the bad
page/row/checkpoint was fenced off pending a clean re-read),
``on_straggler`` (a thread or machine's EWMA iteration time crossed
the slowdown threshold) and ``on_rebalance`` (work was re-partitioned
onto healthy workers).

Benchmarks, the CLI's ``--trace`` flag, and future profilers all ride
this one mechanism instead of scraping ``IterationRecord`` lists after
the fact. Observers are passive: nothing they return can alter the
numerics or the simulated costs, which preserves the two-plane
invariant (see ``docs/architecture.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence, TextIO


class RunObserver:
    """Base observer: every hook is a no-op; override what you need.

    Subclassing (rather than a Protocol) keeps observers forward
    compatible: new events default to no-ops for existing observers.
    """

    def on_run_start(self, n_rows: int, max_iters: int,
                     meta: dict | None = None) -> None:
        """The loop is about to run ``max_iters`` iterations max."""

    def on_iteration_start(self, iteration: int) -> None:
        """An iteration's numerics are about to execute."""

    def on_io_issue(self, iteration: int, rows: int, pages: int,
                    prefetched: bool) -> None:
        """A SEM backend submitted an iteration's reads to the queue.

        ``prefetched`` is True when the prefetcher issued (part of) the
        batch ahead of the compute front against banked overlap credit;
        always False in ``--sync-io`` mode.
        """

    def on_io(self, iteration: int, io: Any) -> None:
        """A SEM backend planned its row fetches (``IoIterationStats``)."""

    def on_io_complete(self, iteration: int, service_ns: float,
                       hidden_ns: float, blocked_ns: float) -> None:
        """The iteration's reads were serviced. ``hidden_ns`` overlapped
        with compute; ``blocked_ns`` is what compute waited behind
        (``hidden + blocked == service``; sync mode hides nothing)."""

    def on_task_trace(self, iteration: int, trace: Any,
                      machine_index: int = 0) -> None:
        """One machine replayed its task blocks (``IterationTrace``).

        Distributed backends emit one call per machine, tagged with
        ``machine_index``; single-machine backends always pass 0.
        """

    def on_collective(self, iteration: int, payload_bytes: int,
                      wire_bytes: int, sim_ns: float) -> None:
        """A distributed backend completed its allreduce."""

    def on_iteration_end(self, iteration: int, record: Any) -> None:
        """The iteration's ``IterationRecord`` is final."""

    def on_checkpoint(self, iteration: int, path: Any) -> None:
        """A backend persisted resumable state after an iteration."""

    def on_fault(self, iteration: int, site: str, kind: str,
                 detail: dict | None = None) -> None:
        """An injected fault fired at ``site`` (see :mod:`repro.faults`)."""

    def on_retry(self, iteration: int, site: str, attempt: int,
                 delay_ns: float) -> None:
        """One recovery attempt (re-read, retransmit) was charged."""

    def on_recovery(self, iteration: int, site: str, action: str,
                    detail: dict | None = None) -> None:
        """A fault was answered (retried, resumed, re-sharded...)."""

    def on_corruption(self, iteration: int, where: str,
                      detail: dict | None = None) -> None:
        """A CRC32 check failed: corruption was detected at ``where``
        (``ssd-page``, ``cache-line``, ``checkpoint``,
        ``net-payload``) before any numerics consumed the bytes."""

    def on_quarantine(self, iteration: int, where: str, what: Any,
                      detail: dict | None = None) -> None:
        """A corrupt resource (page, cached row, checkpoint) was
        fenced off; a clean copy will be re-read or the run aborts."""

    def on_straggler(self, iteration: int, scope: str, worker: int,
                     detail: dict | None = None) -> None:
        """A worker's EWMA iteration time crossed the slowdown
        threshold (``scope`` is ``thread`` or ``machine``)."""

    def on_rebalance(self, iteration: int, scope: str,
                     detail: dict | None = None) -> None:
        """Work was re-partitioned away from degraded workers."""

    def on_preempt_notice(self, iteration: int, machine: int,
                          deadline: int,
                          detail: dict | None = None) -> None:
        """A spot preemption was announced: ``machine`` is lost after
        completing iteration ``deadline``; the grace window is spent
        draining shards / flushing a checkpoint so the planned loss
        commits nothing to replay (see :mod:`repro.elastic`)."""

    def on_scale_up(self, iteration: int, machine: int,
                    detail: dict | None = None) -> None:
        """A machine joined the fleet (planned scale-up or an
        autoscaler grant) and shards re-sharded onto it."""

    def on_scale_down(self, iteration: int, machine: int,
                      detail: dict | None = None) -> None:
        """A machine left the fleet after draining its shards
        (planned scale-in, or a preemption deadline elapsing)."""

    def on_query(self, batch: int, queries: int, latency_ns: float,
                 detail: dict | None = None) -> None:
        """The serving plane answered a batch of assignment queries;
        ``latency_ns`` is the batch's worst arrival-to-completion
        latency and ``batch`` the serve-plane batch index (the
        serving analog of an iteration number)."""

    def on_ingest(self, batch: int, rows: int,
                  detail: dict | None = None) -> None:
        """The serving plane folded ``rows`` streamed arrivals into
        the model via the mini-batch update."""

    def on_alloc(self, tag: str, nbytes: int, reused: bool) -> None:
        """The memory manager handed out a buffer (``reused`` when it
        came from an arena free list instead of fresh backing memory).
        Unlike the iteration events, memory events carry no iteration
        number -- allocations outlive and straddle iterations."""

    def on_free(self, tag: str, nbytes: int) -> None:
        """A manager-owned buffer was returned (pooled or released)."""

    def on_spill(self, tag: str, nbytes: int, ns: float,
                 direction: str) -> None:
        """The budgeted manager moved a cold buffer to (``"out"``) or
        back from (``"in"``) the simulated SSD, charging ``ns``
        simulated I/O time to its spill ledger."""

    def on_run_end(self, iterations: int, converged: bool) -> None:
        """The loop finished (converged or hit the iteration cap)."""


class ObserverChain(RunObserver):
    """Fans every event out to a sequence of observers, in order."""

    def __init__(self, observers: Sequence[RunObserver]) -> None:
        self.observers = list(observers)

    def on_run_start(self, n_rows, max_iters, meta=None):
        for o in self.observers:
            o.on_run_start(n_rows, max_iters, meta)

    def on_iteration_start(self, iteration):
        for o in self.observers:
            o.on_iteration_start(iteration)

    def on_io_issue(self, iteration, rows, pages, prefetched):
        for o in self.observers:
            o.on_io_issue(iteration, rows, pages, prefetched)

    def on_io(self, iteration, io):
        for o in self.observers:
            o.on_io(iteration, io)

    def on_io_complete(self, iteration, service_ns, hidden_ns, blocked_ns):
        for o in self.observers:
            o.on_io_complete(iteration, service_ns, hidden_ns, blocked_ns)

    def on_task_trace(self, iteration, trace, machine_index=0):
        for o in self.observers:
            o.on_task_trace(iteration, trace, machine_index)

    def on_collective(self, iteration, payload_bytes, wire_bytes, sim_ns):
        for o in self.observers:
            o.on_collective(iteration, payload_bytes, wire_bytes, sim_ns)

    def on_iteration_end(self, iteration, record):
        for o in self.observers:
            o.on_iteration_end(iteration, record)

    def on_checkpoint(self, iteration, path):
        for o in self.observers:
            o.on_checkpoint(iteration, path)

    def on_fault(self, iteration, site, kind, detail=None):
        for o in self.observers:
            o.on_fault(iteration, site, kind, detail)

    def on_retry(self, iteration, site, attempt, delay_ns):
        for o in self.observers:
            o.on_retry(iteration, site, attempt, delay_ns)

    def on_recovery(self, iteration, site, action, detail=None):
        for o in self.observers:
            o.on_recovery(iteration, site, action, detail)

    def on_corruption(self, iteration, where, detail=None):
        for o in self.observers:
            o.on_corruption(iteration, where, detail)

    def on_quarantine(self, iteration, where, what, detail=None):
        for o in self.observers:
            o.on_quarantine(iteration, where, what, detail)

    def on_straggler(self, iteration, scope, worker, detail=None):
        for o in self.observers:
            o.on_straggler(iteration, scope, worker, detail)

    def on_rebalance(self, iteration, scope, detail=None):
        for o in self.observers:
            o.on_rebalance(iteration, scope, detail)

    def on_preempt_notice(self, iteration, machine, deadline, detail=None):
        for o in self.observers:
            o.on_preempt_notice(iteration, machine, deadline, detail)

    def on_scale_up(self, iteration, machine, detail=None):
        for o in self.observers:
            o.on_scale_up(iteration, machine, detail)

    def on_scale_down(self, iteration, machine, detail=None):
        for o in self.observers:
            o.on_scale_down(iteration, machine, detail)

    def on_query(self, batch, queries, latency_ns, detail=None):
        for o in self.observers:
            o.on_query(batch, queries, latency_ns, detail)

    def on_ingest(self, batch, rows, detail=None):
        for o in self.observers:
            o.on_ingest(batch, rows, detail)

    def on_alloc(self, tag, nbytes, reused):
        for o in self.observers:
            o.on_alloc(tag, nbytes, reused)

    def on_free(self, tag, nbytes):
        for o in self.observers:
            o.on_free(tag, nbytes)

    def on_spill(self, tag, nbytes, ns, direction):
        for o in self.observers:
            o.on_spill(tag, nbytes, ns, direction)

    def on_run_end(self, iterations, converged):
        for o in self.observers:
            o.on_run_end(iterations, converged)


def chain_observers(observers: Sequence[RunObserver]) -> RunObserver:
    """Collapse 0/1/N observers into one dispatch target."""
    if not observers:
        return RunObserver()
    if len(observers) == 1:
        return observers[0]
    return ObserverChain(observers)


@dataclass
class TraceEvent:
    """One recorded observer event (for tests and offline analysis)."""

    name: str
    iteration: int | None
    payload: dict = field(default_factory=dict)


class RecordingObserver(RunObserver):
    """Appends every event to ``self.events`` -- the test fixture for
    event-ordering guarantees, and a cheap in-memory profiler."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def _rec(self, name: str, iteration: int | None, **payload) -> None:
        self.events.append(TraceEvent(name, iteration, payload))

    def on_run_start(self, n_rows, max_iters, meta=None):
        self._rec("run_start", None, n_rows=n_rows, max_iters=max_iters)

    def on_iteration_start(self, iteration):
        self._rec("iteration_start", iteration)

    def on_io_issue(self, iteration, rows, pages, prefetched):
        self._rec("io_issue", iteration, rows=rows, pages=pages,
                  prefetched=prefetched)

    def on_io(self, iteration, io):
        self._rec("io", iteration, bytes_read=io.bytes_read,
                  service_ns=io.service_ns)

    def on_io_complete(self, iteration, service_ns, hidden_ns, blocked_ns):
        self._rec("io_complete", iteration, service_ns=service_ns,
                  hidden_ns=hidden_ns, blocked_ns=blocked_ns)

    def on_task_trace(self, iteration, trace, machine_index=0):
        self._rec("task_trace", iteration, machine_index=machine_index,
                  total_ns=trace.total_ns, steals=trace.total_steals)

    def on_collective(self, iteration, payload_bytes, wire_bytes, sim_ns):
        self._rec("collective", iteration, payload_bytes=payload_bytes,
                  wire_bytes=wire_bytes, sim_ns=sim_ns)

    def on_iteration_end(self, iteration, record):
        self._rec("iteration_end", iteration, sim_ns=record.sim_ns)

    def on_checkpoint(self, iteration, path):
        self._rec("checkpoint", iteration, path=str(path))

    def on_fault(self, iteration, site, kind, detail=None):
        self._rec("fault", iteration, site=site, kind=kind,
                  detail=detail or {})

    def on_retry(self, iteration, site, attempt, delay_ns):
        self._rec("retry", iteration, site=site, attempt=attempt,
                  delay_ns=delay_ns)

    def on_recovery(self, iteration, site, action, detail=None):
        self._rec("recovery", iteration, site=site, action=action,
                  detail=detail or {})

    def on_corruption(self, iteration, where, detail=None):
        self._rec("corruption", iteration, where=where,
                  detail=detail or {})

    def on_quarantine(self, iteration, where, what, detail=None):
        self._rec("quarantine", iteration, where=where, what=what,
                  detail=detail or {})

    def on_straggler(self, iteration, scope, worker, detail=None):
        self._rec("straggler", iteration, scope=scope, worker=worker,
                  detail=detail or {})

    def on_rebalance(self, iteration, scope, detail=None):
        self._rec("rebalance", iteration, scope=scope,
                  detail=detail or {})

    def on_preempt_notice(self, iteration, machine, deadline, detail=None):
        self._rec("preempt_notice", iteration, machine=machine,
                  deadline=deadline, detail=detail or {})

    def on_scale_up(self, iteration, machine, detail=None):
        self._rec("scale_up", iteration, machine=machine,
                  detail=detail or {})

    def on_scale_down(self, iteration, machine, detail=None):
        self._rec("scale_down", iteration, machine=machine,
                  detail=detail or {})

    def on_query(self, batch, queries, latency_ns, detail=None):
        self._rec("query", batch, queries=queries,
                  latency_ns=latency_ns, detail=detail or {})

    def on_ingest(self, batch, rows, detail=None):
        self._rec("ingest", batch, rows=rows, detail=detail or {})

    def on_alloc(self, tag, nbytes, reused):
        self._rec("alloc", None, tag=tag, nbytes=nbytes, reused=reused)

    def on_free(self, tag, nbytes):
        self._rec("free", None, tag=tag, nbytes=nbytes)

    def on_spill(self, tag, nbytes, ns, direction):
        self._rec("spill", None, tag=tag, nbytes=nbytes, ns=ns,
                  direction=direction)

    def on_run_end(self, iterations, converged):
        self._rec("run_end", None, iterations=iterations,
                  converged=converged)

    def names(self) -> list[str]:
        """Event names in arrival order (ordering assertions)."""
        return [e.name for e in self.events]

    def fault_events(self) -> list[TraceEvent]:
        """The fault-plane subset, in order -- a run's fault trace.

        Two runs with the same fault seed produce equal lists
        (byte-for-byte reproducibility; asserted in the fault tests).
        """
        return [
            e for e in self.events
            if e.name in ("fault", "retry", "recovery", "corruption",
                          "quarantine", "straggler", "rebalance")
        ]

    def elastic_events(self) -> list[TraceEvent]:
        """The membership subset, in order -- a run's elastic trace.

        Pure function of (plan seed, fault seed): two runs with the
        same seeds produce equal lists (pinned by the elastic suite).
        Empty for zero-event plans and plan-free runs.
        """
        return [
            e for e in self.events
            if e.name in ("preempt_notice", "scale_up", "scale_down")
        ]


class PrintObserver(RunObserver):
    """Writes one line per event -- the CLI's ``--trace`` output."""

    def __init__(self, stream: TextIO | None = None) -> None:
        import sys

        self.stream = stream if stream is not None else sys.stderr

    def _emit(self, line: str) -> None:
        print(line, file=self.stream)

    def on_run_start(self, n_rows, max_iters, meta=None):
        self._emit(f"[trace] run start: n={n_rows} max_iters={max_iters}")

    def on_io_issue(self, iteration, rows, pages, prefetched):
        mode = "prefetch" if prefetched else "demand"
        self._emit(
            f"[trace] it={iteration} io issue: rows={rows} "
            f"pages={pages} ({mode})"
        )

    def on_io(self, iteration, io):
        self._emit(
            f"[trace] it={iteration} io: rows={io.rows_needed} "
            f"rc_hits={io.row_cache_hits} read={io.bytes_read}B "
            f"service={io.service_ns / 1e6:.3f}ms"
        )

    def on_io_complete(self, iteration, service_ns, hidden_ns, blocked_ns):
        self._emit(
            f"[trace] it={iteration} io complete: "
            f"service={service_ns / 1e6:.3f}ms "
            f"hidden={hidden_ns / 1e6:.3f}ms "
            f"blocked={blocked_ns / 1e6:.3f}ms"
        )

    def on_task_trace(self, iteration, trace, machine_index=0):
        self._emit(
            f"[trace] it={iteration} m={machine_index} compute: "
            f"span={trace.span_ns / 1e6:.3f}ms "
            f"busy={trace.busy_fraction:.2f} steals={trace.total_steals}"
        )

    def on_collective(self, iteration, payload_bytes, wire_bytes, sim_ns):
        self._emit(
            f"[trace] it={iteration} allreduce: payload={payload_bytes}B "
            f"wire={wire_bytes}B time={sim_ns / 1e6:.3f}ms"
        )

    def on_iteration_end(self, iteration, record):
        self._emit(
            f"[trace] it={iteration} done: sim={record.sim_ns / 1e6:.3f}ms"
            f" changed={record.n_changed} dist={record.dist_computations}"
        )

    def on_checkpoint(self, iteration, path):
        self._emit(f"[trace] it={iteration} checkpoint -> {path}")

    def on_fault(self, iteration, site, kind, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(f"[fault] it={iteration} {site}: {kind}{extra}")

    def on_retry(self, iteration, site, attempt, delay_ns):
        self._emit(
            f"[fault] it={iteration} {site}: retry #{attempt} "
            f"(+{delay_ns / 1e6:.3f}ms)"
        )

    def on_recovery(self, iteration, site, action, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(
            f"[fault] it={iteration} {site}: recovered via {action}{extra}"
        )

    def on_corruption(self, iteration, where, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(
            f"[fault] it={iteration} corruption detected at "
            f"{where}{extra}"
        )

    def on_quarantine(self, iteration, where, what, detail=None):
        self._emit(
            f"[fault] it={iteration} quarantined {where} {what}"
        )

    def on_straggler(self, iteration, scope, worker, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(
            f"[fault] it={iteration} straggling {scope} "
            f"{worker}{extra}"
        )

    def on_rebalance(self, iteration, scope, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(
            f"[fault] it={iteration} rebalanced {scope} work{extra}"
        )

    def on_preempt_notice(self, iteration, machine, deadline, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(
            f"[elastic] it={iteration} preempt notice: machine "
            f"{machine} lost after it={deadline}{extra}"
        )

    def on_scale_up(self, iteration, machine, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(
            f"[elastic] it={iteration} scale up: machine {machine} "
            f"joined{extra}"
        )

    def on_scale_down(self, iteration, machine, detail=None):
        extra = f" {detail}" if detail else ""
        self._emit(
            f"[elastic] it={iteration} scale down: machine {machine} "
            f"left{extra}"
        )

    def on_query(self, batch, queries, latency_ns, detail=None):
        self._emit(
            f"[serve] batch={batch} answered {queries} queries "
            f"(worst latency {latency_ns / 1e6:.3f}ms)"
        )

    def on_ingest(self, batch, rows, detail=None):
        self._emit(
            f"[serve] batch={batch} ingested {rows} rows"
        )

    # on_alloc/on_free stay silent under --trace: a run performs
    # thousands of allocations and the firehose would drown the
    # iteration trace. Spills are rare and load-bearing, so they print.
    def on_spill(self, tag, nbytes, ns, direction):
        self._emit(
            f"[mem] spill {direction}: {tag or '<untagged>'} "
            f"{nbytes}B (+{ns / 1e6:.3f}ms)"
        )

    def on_run_end(self, iterations, converged):
        state = "converged" if converged else "cap hit"
        self._emit(f"[trace] run end: {iterations} iterations ({state})")
