"""The MM algorithm plane: clusterNOR's generalization of knor.

clusterNOR observes that knor's backbone is not k-means-specific: any
algorithm alternating a per-row **majorize** phase (each row votes
into per-thread additive accumulators) with a global **minimize**
phase (the reduced accumulators update the model) can ride the same
NUMA scheduling, SEM out-of-core execution and distributed sharding.
This module is that frame:

* :class:`MMAlgorithm` -- the protocol. ``majorize()`` advances the
  per-row phase and returns an :class:`MMStep` carrying the exact
  per-row work statistics plus a named accumulator payload
  (``dict[str, ndarray]``, additive across row subsets);
  ``minimize(payload)`` folds the (reduced) accumulators into the
  model. k-means itself is just the first implementation
  (:class:`KmeansMM`); GMM, spherical, semisupervised and Yinyang live
  in :mod:`repro.extensions`.
* :class:`MMSource` -- adapts an algorithm to the
  :class:`~repro.runtime.sources.NumericsSource` contract, so the
  in-memory and SEM backends drive it unchanged.
* :class:`MMShardedProgram` -- adapts it to the
  :class:`~repro.runtime.backends.ShardedProgram` contract for the
  distributed backend.
* :class:`MMCheckpointHook` -- the SEM checkpoint hook over the
  generic v4 on-disk format (:mod:`repro.sem.checkpoint`).
* ``run_mm_inmemory`` / ``run_mm_sem`` / ``run_mm_distributed`` --
  the three generic drivers, mirroring knori/knors/knord assembly.

Bit-identity across backends, by construction
---------------------------------------------
An MM algorithm's numerics are computed **once globally** per
iteration, whatever the substrate. The in-memory and SEM backends
simply call ``majorize()`` then ``minimize(step.payload)``. The
distributed backend slices the same global step at shard bounds to
price per-machine compute, prices the collective from the true
payload shapes -- but ``minimize`` consumes the algorithm's own
bit-exact global accumulators rather than the tree-reduced arrays,
whose float reassociation would perturb the last bits. The model is
therefore bit-identical across InMemory/Sem/Distributed for the same
seed (the cross-backend equivalence suite pins this), while simulated
time, I/O and network traffic remain fully substrate-specific.
(knord's k-means path keeps its real per-shard loops + tree reduce,
agreeing to 1e-10; the MM plane trades that realism for exactness.)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConfigError, DatasetError, IoSubsystemError
from repro.metrics import RunResult
from repro.runtime.backends import (
    InMemoryBackend,
    SemBackend,
    ShardedProgram,
)
from repro.runtime.loop import IterationLoop, LoopResult
from repro.runtime.observer import RunObserver
from repro.runtime.sources import StepStats


@dataclass
class MMStep:
    """One majorize phase's exact outputs.

    ``payload`` maps accumulator names to additive ndarrays -- the
    quantities a distributed run would allreduce (centroid sums +
    counts for k-means, weighted sums/squared sums for GMM, ...).
    Everything else prices the hardware plane, exactly as
    :class:`~repro.runtime.sources.StepStats`.
    """

    dist_per_row: np.ndarray
    needs_data: np.ndarray
    n_changed: int
    payload: dict[str, np.ndarray]
    motion: np.ndarray | None = None
    clause1_rows: int = 0
    clause2_pruned: int = 0
    clause3_pruned: int = 0


@runtime_checkable
class MMAlgorithm(Protocol):
    """The Majorize-Minimization contract every MM algorithm fulfills.

    Attributes: ``name`` (registry/checkpoint identifier), ``n_rows``,
    ``d``, ``max_iters`` (iteration cap), ``reduction_slots`` (funnel
    reduction width in d-length-vector units; ``k`` for k-means) and
    ``state_bytes_per_row`` (per-row algorithm state the hardware
    plane charges memory traffic for).
    """

    name: str
    n_rows: int
    d: int
    max_iters: int
    reduction_slots: int
    state_bytes_per_row: int

    def majorize(self) -> MMStep:  # pragma: no cover - protocol
        """Advance the per-row phase one iteration (stateful)."""
        ...

    def minimize(
        self, payload: dict[str, np.ndarray]
    ) -> None:  # pragma: no cover - protocol
        """Fold reduced accumulators into the model."""
        ...

    def converged(self) -> bool:  # pragma: no cover - protocol
        """Did the last completed iteration reach the stopping rule?"""
        ...

    def reset(self) -> None:  # pragma: no cover - protocol
        """Rewind to iteration 0 (crash recovery's from-scratch path)."""
        ...

    def export_state(self) -> dict:  # pragma: no cover - protocol
        """Resumable snapshot: ``{"iteration": int, <name>: ndarray
        or scalar, ...}``."""
        ...

    def restore_state(
        self, snap: dict
    ) -> None:  # pragma: no cover - protocol
        ...

    def result(
        self,
        loop_result: LoopResult,
        *,
        memory_breakdown: dict[str, int] | None = None,
        extra_params: dict | None = None,
    ) -> RunResult:  # pragma: no cover - protocol
        """Assemble the uniform result envelope."""
        ...


class MMSource:
    """Adapts an :class:`MMAlgorithm` to the ``NumericsSource``
    contract: one step = majorize + immediate minimize of the global
    payload (a single-participant reduction)."""

    def __init__(self, algorithm: MMAlgorithm) -> None:
        self.algorithm = algorithm
        # The backends' crash recovery resets through ``source.loop``.
        self.loop = algorithm

    def step(self, iteration: int) -> StepStats:
        step = self.algorithm.majorize()
        self.algorithm.minimize(step.payload)
        return StepStats(
            dist_per_row=step.dist_per_row,
            needs_data=step.needs_data,
            n_changed=step.n_changed,
            motion=step.motion,
            clause1_rows=step.clause1_rows,
            clause2_pruned=step.clause2_pruned,
            clause3_pruned=step.clause3_pruned,
            state_bytes=self.algorithm.state_bytes_per_row,
        )


class MMShardedProgram(ShardedProgram):
    """Adapts an :class:`MMAlgorithm` to the distributed backend.

    The global majorize runs once per iteration (at the first shard's
    step); each shard's :class:`StepStats` is the global step sliced
    at the contiguous shard bounds, so per-machine compute pricing
    sees exactly the work that shard's rows generate. Scalar progress
    counters (n_changed, clauses, motion) are attributed to shard 0 --
    records only ever report their totals.
    """

    def __init__(
        self,
        algorithm: MMAlgorithm,
        n_shards: int,
        *,
        allreduce: str = "tree",
    ) -> None:
        from repro.dist.mpi import check_allreduce

        n = algorithm.n_rows
        if n < n_shards:
            raise DatasetError(
                f"n={n} rows cannot shard over {n_shards} machines"
            )
        self.algorithm = algorithm
        self.n_rows = n
        self.allreduce = check_allreduce(allreduce)
        self.bounds = np.linspace(0, n, n_shards + 1, dtype=np.int64)
        self._step: MMStep | None = None

    @property
    def n_shards(self) -> int:
        return len(self.bounds) - 1

    def shard_rows(self) -> list[int]:
        return np.diff(self.bounds).astype(int).tolist()

    def step(self, si: int) -> StepStats:
        if si == 0:
            self._step = self.algorithm.majorize()
        assert self._step is not None
        s = self._step
        lo, hi = int(self.bounds[si]), int(self.bounds[si + 1])
        first = si == 0
        return StepStats(
            dist_per_row=s.dist_per_row[lo:hi],
            needs_data=s.needs_data[lo:hi],
            n_changed=s.n_changed if first else 0,
            motion=s.motion if first else None,
            clause1_rows=s.clause1_rows if first else 0,
            clause2_pruned=s.clause2_pruned if first else 0,
            clause3_pruned=s.clause3_pruned if first else 0,
            state_bytes=self.algorithm.state_bytes_per_row,
        )

    def payload(self, si: int) -> dict[str, np.ndarray]:
        """Shard contributions for the priced collective.

        Shard 0 carries the global accumulators, the rest zeros: the
        tree-summed total equals the global payload and every shard
        ships the true array shapes, so wire bytes and latency are
        exact. The *values* coming back out of the reduction are
        discarded (see :meth:`minimize`).
        """
        assert self._step is not None
        if si == 0:
            return dict(self._step.payload)
        return {
            key: np.zeros_like(arr)
            for key, arr in self._step.payload.items()
        }

    def minimize(self, reduced: dict[str, np.ndarray]) -> None:
        """Feed the algorithm its own bit-exact global payload.

        The tree-reduced arrays are mathematically the same values,
        but float reassociation (and ``-0.0 + 0.0``) can flip last
        bits; consuming the global accumulators keeps the model
        byte-identical to the single-machine path while the collective
        above still priced the real reduction.
        """
        assert self._step is not None
        self.algorithm.minimize(self._step.payload)

    def reset(self) -> None:
        self.algorithm.reset()
        self._step = None

    @property
    def model_array(self) -> np.ndarray:
        return self.algorithm.model_array


@dataclass
class MMCheckpointHook:
    """SEM checkpoint hook for MM algorithms (v4 on-disk format).

    Same cadence and crash/corruption injection surface as the kmeans
    :class:`~repro.runtime.backends.CheckpointHook`; the payload is
    whatever ``algorithm.export_state()`` returns -- ndarrays go into
    the arrays file (CRC32-checked), scalars into the manifest.
    """

    directory: str | Path
    interval: int
    algorithm: MMAlgorithm
    params: dict
    faults: Any = None

    # ``loop`` aliases the algorithm so shared backend code that
    # expects a hook with a resettable loop keeps working.
    @property
    def loop(self) -> MMAlgorithm:
        return self.algorithm

    def maybe_save(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> None:
        if (iteration + 1) % self.interval != 0:
            return
        self._save(iteration, n_changed, observer)

    def force_save(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> None:
        """Out-of-interval flush for a preemption-notice grace window
        (same protocol and fault sites as an interval save)."""
        self._save(iteration, n_changed, observer)

    def _save(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> None:
        from repro.sem.checkpoint import (
            MMCheckpointState,
            save_mm_checkpoint,
        )

        crash_point = (
            self.faults.checkpoint_crash(iteration)
            if self.faults is not None
            else None
        )
        if crash_point is not None:
            observer.on_fault(iteration, "checkpoint", crash_point, {})
        snap = self.algorithm.export_state()
        arrays = {
            name: np.asarray(value)
            for name, value in snap.items()
            if name != "iteration" and isinstance(value, np.ndarray)
        }
        scalars = {
            name: value
            for name, value in snap.items()
            if name != "iteration" and not isinstance(value, np.ndarray)
        }
        save_mm_checkpoint(
            self.directory,
            MMCheckpointState(
                iteration=int(snap["iteration"]),
                algorithm=self.algorithm.name,
                arrays=arrays,
                scalars=scalars,
                n_changed=n_changed,
                params=self.params,
            ),
            crash_point=crash_point,
        )
        if self.faults is not None and self.faults.checkpoint_corruption(
            iteration
        ):
            from repro.sem.checkpoint import corrupt_checkpoint

            offset = corrupt_checkpoint(self.directory)
            observer.on_fault(
                iteration, "corruption", "checkpoint",
                {"offset": offset},
            )
        observer.on_checkpoint(iteration, self.directory)

    def try_restore(
        self, iteration: int, observer: RunObserver
    ) -> int | None:
        """Restore the newest v4 checkpoint, quarantining a corrupt
        one; returns the resume iteration or None."""
        from repro.errors import CorruptionError
        from repro.sem.checkpoint import (
            discard_checkpoint,
            has_checkpoint,
            load_mm_checkpoint,
        )

        if not has_checkpoint(self.directory):
            return None
        try:
            ckpt = load_mm_checkpoint(self.directory)
        except CorruptionError as exc:
            observer.on_corruption(
                iteration, "checkpoint", {"error": str(exc)}
            )
            discarded = discard_checkpoint(self.directory)
            observer.on_quarantine(
                iteration, "checkpoint", str(self.directory),
                {"files_removed": discarded},
            )
            return None
        if ckpt.algorithm != self.algorithm.name:
            raise IoSubsystemError(
                f"checkpoint in {self.directory} belongs to algorithm "
                f"{ckpt.algorithm!r}, not {self.algorithm.name!r}"
            )
        snap = {"iteration": ckpt.iteration}
        snap.update(ckpt.arrays)
        snap.update(ckpt.scalars)
        self.algorithm.restore_state(snap)
        return ckpt.iteration


class KmeansMM:
    """k-means as the first MM algorithm.

    ``majorize`` advances the library's own
    :class:`~repro.drivers.common.NumericsLoop` (Lloyd's or MTI) and
    exposes its per-cluster sums/counts as the accumulator payload;
    the centroid install is folded into the loop's step, so
    ``minimize`` is a no-op. One loop serves every backend
    (``n_partitions=1``), which is what makes the MM kmeans model
    bit-identical across substrates -- and, for ``pruning="mti"``,
    bit-identical to the classic ``knori`` driver as well (pinned by
    the MM plane test suite).
    """

    name = "kmeans"

    def __init__(
        self,
        x: np.ndarray,
        k: int,
        *,
        pruning: str | None = "mti",
        init: str | np.ndarray = "random",
        seed: int = 0,
        criteria: Any = None,
        empty_cluster: str = "drop",
        kernel: str = "blocked",
    ) -> None:
        from repro.drivers.common import (
            NumericsLoop,
            default_criteria,
            resolve_init,
        )
        from repro.runtime.memory import state_bytes_per_row

        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"x must be 2-D, got shape {x.shape}")
        n, d = x.shape
        if k > n:
            raise DatasetError(
                f"k={k} clusters cannot exceed the n={n} data rows"
            )
        self.x = x
        self.k = k
        self.n_rows = n
        self.d = d
        self.criteria = default_criteria(criteria)
        self.max_iters = self.criteria.max_iters
        centroids0 = resolve_init(x, k, init, seed)
        self.loop = NumericsLoop(
            x, centroids0, pruning, n_partitions=1,
            empty_cluster=empty_cluster, kernel=kernel,
        )
        self.reduction_slots = k
        self.state_bytes_per_row = state_bytes_per_row(
            self.loop.pruning, k
        )
        self._last: Any = None

    def majorize(self) -> MMStep:
        num = self.loop.step()
        sums, counts = self.loop.partial_sums_counts()
        self._last = num
        return MMStep(
            dist_per_row=num.dist_per_row,
            needs_data=num.needs_data,
            n_changed=num.n_changed,
            payload={"sums": sums, "counts": counts.astype(np.float64)},
            motion=num.motion,
            clause1_rows=num.clause1_rows,
            clause2_pruned=num.clause2_pruned,
            clause3_pruned=num.clause3_pruned,
        )

    def minimize(self, payload: dict[str, np.ndarray]) -> None:
        """No-op: the loop's step already installed the centroids
        (its divide is bit-identical to sums/counts)."""

    def converged(self) -> bool:
        if self._last is None:
            return False
        return self.criteria.converged(
            self.n_rows, self._last.n_changed, self._last.motion
        )

    def reset(self) -> None:
        self.loop.reset()
        self._last = None

    def export_state(self) -> dict:
        return self.loop.export_state()

    def restore_state(self, snap: dict) -> None:
        self.loop.restore_state(snap)
        self._last = None

    @property
    def model_array(self) -> np.ndarray:
        return self.loop.centroids

    def result(
        self,
        loop_result: LoopResult,
        *,
        memory_breakdown: dict[str, int] | None = None,
        extra_params: dict | None = None,
    ) -> RunResult:
        return loop_result.as_run_result(
            algorithm="mm-kmeans",
            centroids=self.loop.centroids,
            assignment=self.loop.assignment.copy(),
            inertia=self.loop.inertia(),
            memory_breakdown=memory_breakdown,
            params={
                "n": self.n_rows, "d": self.d, "k": self.k,
                "pruning": self.loop.pruning, "algorithm": self.name,
                "kernel": self.loop.kernel,
                **(extra_params or {}),
            },
        )


# ---------------------------------------------------------------------
# Generic drivers: one per substrate, mirroring knori/knors/knord.
# ---------------------------------------------------------------------


def run_mm_inmemory(
    algorithm: MMAlgorithm,
    *,
    cost_model: Any = None,
    n_threads: int | None = None,
    bind_policy: Any = None,
    scheduler: str = "numa_aware",
    task_rows: int | None = None,
    machine: Any = None,
    observers: Sequence[RunObserver] = (),
    faults: Any = None,
    membership: Any = None,
    mem: Any = None,
    mem_budget_bytes: int | None = None,
) -> RunResult:
    """Run an MM algorithm on one simulated NUMA machine (knori's
    substrate: scheduler + engine replay, barrier + funnel
    reduction). ``mem``/``mem_budget_bytes`` select the interpreter-
    side memory manager (see :mod:`repro.mem`); results are
    bit-identical across managers."""
    from repro.drivers.common import make_scheduler, resolve_memory_manager
    from repro.mem import use_manager
    from repro.runtime.memory import register_mm_memory
    from repro.sched.blocks import auto_task_rows
    from repro.simhw import BindPolicy, FOUR_SOCKET_XEON, SimMachine

    if machine is None:
        machine = SimMachine.build(
            cost_model or FOUR_SOCKET_XEON,
            n_threads=n_threads,
            bind_policy=bind_policy or BindPolicy.NUMA_BIND,
        )
    sched = make_scheduler(scheduler)
    if task_rows is None:
        task_rows = auto_task_rows(algorithm.n_rows, machine.n_threads)
    register_mm_memory(
        machine, algorithm.n_rows, algorithm.d,
        state_bytes_per_row=algorithm.state_bytes_per_row,
        model_slots=algorithm.reduction_slots,
    )
    manager = resolve_memory_manager(mem, mem_budget_bytes, observers)
    with use_manager(manager):
        backend = InMemoryBackend(
            machine,
            sched,
            MMSource(algorithm),
            n_rows=algorithm.n_rows,
            d=algorithm.d,
            reduction_k=algorithm.reduction_slots,
            task_rows=task_rows,
            faults=faults,
        )
        result = IterationLoop(
            backend,
            should_stop=lambda out: algorithm.converged(),
            max_iters=algorithm.max_iters,
            observers=observers,
            faults=faults,
            membership=membership,
        ).run()
    return algorithm.result(
        result,
        memory_breakdown=machine.memory.component_breakdown(),
        extra_params={
            "backend": "inmemory",
            "T": machine.n_threads,
            "scheduler": scheduler,
        },
    )


def run_mm_sem(
    algorithm: MMAlgorithm,
    *,
    ssd: Any = None,
    cost_model: Any = None,
    n_threads: int | None = None,
    bind_policy: Any = None,
    scheduler: str = "numa_aware",
    row_cache_bytes: int | None = None,
    page_cache_bytes: int | None = None,
    cache_update_interval: int = 5,
    io_mode: str = "async",
    io_queue_depth: int = 32,
    io_channels: int | None = None,
    task_rows: int | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_interval: int = 10,
    resume: bool = False,
    observers: Sequence[RunObserver] = (),
    faults: Any = None,
    retry_policy: Any = None,
    membership: Any = None,
    mem: Any = None,
    mem_budget_bytes: int | None = None,
) -> RunResult:
    """Run an MM algorithm semi-external-memory (knors' substrate:
    SAFS + row cache + async I/O pipeline, v4 checkpoints).

    The algorithm's ``needs_data`` mask drives real I/O savings: rows
    a pruned iteration never touches issue no SSD requests.
    ``mem``/``mem_budget_bytes`` select the interpreter-side memory
    manager (see :mod:`repro.mem`).
    """
    from repro.drivers.common import make_scheduler, resolve_memory_manager
    from repro.mem import use_manager
    from repro.sched.blocks import auto_task_rows
    from repro.sem import RowCache, RowEngine, Safs
    from repro.sem.checkpoint import has_checkpoint, load_mm_checkpoint
    from repro.simhw import BindPolicy, FOUR_SOCKET_XEON, SimMachine
    from repro.simhw.ssd import AsyncIoQueue, OCZ_INTREPID_ARRAY

    ssd = ssd or OCZ_INTREPID_ARRAY
    n, d = algorithm.n_rows, algorithm.d
    row_bytes = d * 8
    data_bytes = n * row_bytes
    if row_cache_bytes is None:
        row_cache_bytes = data_bytes // 32
    if page_cache_bytes is None:
        page_cache_bytes = max(64 * ssd.page_bytes, data_bytes // 16)

    machine = SimMachine.build(
        cost_model or FOUR_SOCKET_XEON,
        n_threads=n_threads,
        bind_policy=bind_policy or BindPolicy.NUMA_BIND,
        ssd=ssd,
    )
    sched = make_scheduler(scheduler)
    t = machine.n_threads
    if task_rows is None:
        task_rows = auto_task_rows(n, t)

    manager = resolve_memory_manager(mem, mem_budget_bytes, observers)
    with use_manager(manager):
        io_queue = (
            AsyncIoQueue(queue_depth=io_queue_depth, channels=io_channels)
            if io_mode == "async"
            else None
        )
        safs = Safs(
            ssd,
            page_cache_bytes=page_cache_bytes,
            faults=faults,
            retry_policy=retry_policy,
            io_queue=io_queue,
        )
        row_cache = (
            RowCache(
                row_cache_bytes,
                row_bytes,
                n,
                n_partitions=t,
                update_interval=cache_update_interval,
            )
            if row_cache_bytes > 0
            else None
        )
        io_engine = RowEngine(safs, row_bytes, n, row_cache=row_cache)
        from repro.runtime.memory import register_mm_memory

        register_mm_memory(
            machine, n, d,
            state_bytes_per_row=algorithm.state_bytes_per_row,
            model_slots=algorithm.reduction_slots,
            resident_rows=False,
            row_cache_bytes=row_cache_bytes,
            page_cache_bytes=page_cache_bytes,
        )

        start_it = 0
        if resume and checkpoint_dir is not None and has_checkpoint(
            checkpoint_dir
        ):
            ckpt = load_mm_checkpoint(checkpoint_dir)
            if ckpt.algorithm != algorithm.name:
                raise IoSubsystemError(
                    f"checkpoint in {checkpoint_dir} belongs to "
                    f"algorithm {ckpt.algorithm!r}, not "
                    f"{algorithm.name!r}"
                )
            snap = {"iteration": ckpt.iteration}
            snap.update(ckpt.arrays)
            snap.update(ckpt.scalars)
            algorithm.restore_state(snap)
            start_it = ckpt.iteration
            if row_cache is not None:
                row_cache.fast_forward(start_it - 1)

        checkpoint = (
            MMCheckpointHook(
                directory=checkpoint_dir,
                interval=checkpoint_interval,
                algorithm=algorithm,
                params={"n": n, "d": d, "algorithm": algorithm.name},
                faults=faults,
            )
            if checkpoint_dir is not None
            else None
        )
        backend = SemBackend(
            machine,
            sched,
            MMSource(algorithm),
            io_engine,
            n_rows=n,
            d=d,
            reduction_k=algorithm.reduction_slots,
            task_rows=task_rows,
            checkpoint=checkpoint,
            io_mode=io_mode,
            faults=faults,
        )
        result = IterationLoop(
            backend,
            should_stop=lambda out: algorithm.converged(),
            max_iters=algorithm.max_iters,
            observers=observers,
            start_iteration=start_it,
            faults=faults,
            membership=membership,
        ).run()
    return algorithm.result(
        result,
        memory_breakdown=machine.memory.component_breakdown(),
        extra_params={
            "backend": "sem",
            "T": t,
            "io_mode": io_mode,
            "row_cache_bytes": row_cache_bytes,
            "page_cache_bytes": page_cache_bytes,
        },
    )


def run_mm_distributed(
    algorithm: MMAlgorithm,
    *,
    n_machines: int = 4,
    cost_model: Any = None,
    threads_per_machine: int | None = None,
    bind_policy: Any = None,
    scheduler: str = "numa_aware",
    network: Any = None,
    task_rows: int | None = None,
    cluster: Any = None,
    observers: Sequence[RunObserver] = (),
    faults: Any = None,
    retry_policy: Any = None,
    allreduce: str = "tree",
    membership: Any = None,
    autoscaler: Any = None,
    mem: Any = None,
    mem_budget_bytes: int | None = None,
) -> RunResult:
    """Run an MM algorithm on a simulated cluster (knord's substrate:
    per-shard machine replay + allreduce of the algorithm's
    accumulator payload; ``allreduce`` picks the charged schedule,
    ``"tree"`` or ``"rect"``, see :mod:`repro.dist.mpi`).
    ``mem``/``mem_budget_bytes`` select the interpreter-side memory
    manager (see :mod:`repro.mem`)."""
    from repro.dist import Cluster, TEN_GBE
    from repro.drivers.common import make_scheduler, resolve_memory_manager
    from repro.mem import use_manager
    from repro.runtime.backends import DistributedBackend
    from repro.simhw import BindPolicy, EC2_C4_8XLARGE

    if cluster is None:
        cluster = Cluster.build(
            n_machines,
            cost_model=cost_model or EC2_C4_8XLARGE,
            threads_per_machine=threads_per_machine,
            bind_policy=bind_policy or BindPolicy.NUMA_BIND,
            network=network or TEN_GBE,
        )
    p = cluster.n_machines
    manager = resolve_memory_manager(mem, mem_budget_bytes, observers)
    with use_manager(manager):
        program = MMShardedProgram(algorithm, p, allreduce=allreduce)
        from repro.runtime.memory import register_mm_memory

        for machine, shard_n in zip(cluster.machines,
                                    program.shard_rows()):
            register_mm_memory(
                machine, shard_n, algorithm.d,
                state_bytes_per_row=algorithm.state_bytes_per_row,
                model_slots=algorithm.reduction_slots,
            )
        schedulers = [make_scheduler(scheduler) for _ in range(p)]
        backend = DistributedBackend(
            cluster,
            schedulers,
            program,
            d=algorithm.d,
            k=algorithm.reduction_slots,
            task_rows=task_rows,
            state_bytes=algorithm.state_bytes_per_row,
            faults=faults,
            retry_policy=retry_policy,
            membership=membership,
            autoscaler=autoscaler,
        )
        result = IterationLoop(
            backend,
            should_stop=lambda out: algorithm.converged(),
            max_iters=algorithm.max_iters,
            observers=observers,
            faults=faults,
        ).run()
    return algorithm.result(
        result,
        memory_breakdown=cluster.machines[0].memory.component_breakdown(),
        extra_params={
            "backend": "distributed",
            "n_machines": p,
            "threads_per_machine": cluster.machines[0].n_threads,
            "scheduler": scheduler,
            "memory_scope": "per_machine",
            "allreduce": program.allreduce,
        },
    )


BACKEND_RUNNERS = {
    "inmemory": run_mm_inmemory,
    "sem": run_mm_sem,
    "distributed": run_mm_distributed,
}


def run_mm(
    algorithm: MMAlgorithm, backend: str = "inmemory", **kwargs: Any
) -> RunResult:
    """Dispatch an MM algorithm onto a backend by name."""
    if backend not in BACKEND_RUNNERS:
        raise ConfigError(
            f"unknown backend {backend!r}; choose from "
            f"{sorted(BACKEND_RUNNERS)}"
        )
    return BACKEND_RUNNERS[backend](algorithm, **kwargs)
