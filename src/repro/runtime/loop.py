"""The single iteration orchestrator every driver runs through.

``IterationLoop`` owns the skeleton the paper's three engines share:
step the numerics, replay them on the substrate, record the iteration,
fire the post-record hook (checkpointing), check convergence. The
backend supplies the substrate; the stopping rule is either a
:class:`~repro.core.ConvergenceCriteria` (the k-means drivers) or an
arbitrary ``should_stop`` callable (the generalized framework, which
delegates to the algorithm's own ``converged()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core import ConvergenceCriteria
from repro.errors import ConfigError, WorkerCrashError
from repro.metrics import IterationRecord, RunResult
from repro.runtime.backends import ExecutionBackend, IterationOutcome
from repro.runtime.observer import RunObserver, chain_observers


@dataclass
class LoopResult:
    """What one orchestrated run produced, before result assembly."""

    records: list[IterationRecord] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        return len(self.records)

    def as_run_result(
        self,
        *,
        algorithm: str,
        centroids: np.ndarray,
        assignment: np.ndarray,
        inertia: float,
        memory_breakdown: dict[str, int] | None = None,
        params: dict | None = None,
    ) -> RunResult:
        """Assemble the uniform :class:`RunResult` envelope."""
        return RunResult(
            algorithm=algorithm,
            centroids=centroids,
            assignment=assignment,
            iterations=self.iterations,
            converged=self.converged,
            inertia=inertia,
            records=self.records,
            memory_breakdown=memory_breakdown or {},
            params=params or {},
        )


class IterationLoop:
    """Run a backend to convergence (or the iteration cap).

    Parameters
    ----------
    backend:
        Any :class:`~repro.runtime.backends.ExecutionBackend`.
    criteria:
        k-means stopping rules; mutually exclusive with
        ``should_stop``. Supplies ``max_iters`` when given.
    should_stop:
        Custom predicate over each :class:`IterationOutcome`
        (the framework passes ``lambda out: algorithm.converged()``).
        Requires an explicit ``max_iters``.
    max_iters:
        Iteration cap; required with ``should_stop``, optional
        override alongside ``criteria``.
    observers:
        :class:`RunObserver` hooks; all events fan out to each, in
        order.
    start_iteration:
        First iteration index (non-zero when resuming a checkpointed
        run; the cap stays absolute, as in the paper's recovery).
    faults:
        Optional :class:`~repro.faults.FaultPlan`. The loop consults
        it at every iteration boundary (the paper's recovery unit):
        an injected worker crash -- or a
        :class:`~repro.errors.WorkerCrashError` escaping the backend,
        e.g. from a mid-checkpoint crash -- triggers
        ``backend.recover()``, which restores the newest checkpoint
        (or restarts from scratch) and reports the iteration to
        replay from. Replayed iterations overwrite their crashed
        records, so a recovered run's record stream is continuous.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        *,
        criteria: ConvergenceCriteria | None = None,
        should_stop: Callable[[IterationOutcome], bool] | None = None,
        max_iters: int | None = None,
        observers: Sequence[RunObserver] = (),
        start_iteration: int = 0,
        faults: Any = None,
    ) -> None:
        if (criteria is None) == (should_stop is None):
            raise ConfigError(
                "pass exactly one of criteria / should_stop"
            )
        if should_stop is not None and max_iters is None:
            raise ConfigError("should_stop requires max_iters")
        self.backend = backend
        self.criteria = criteria
        self.should_stop = should_stop
        self.max_iters = (
            max_iters if max_iters is not None else criteria.max_iters
        )
        self.observer = chain_observers(observers)
        self.start_iteration = start_iteration
        self.faults = faults

    def _stopped(self, outcome: IterationOutcome) -> bool:
        if self.criteria is not None:
            return self.criteria.converged(
                self.backend.n_rows, outcome.n_changed, outcome.motion
            )
        return self.should_stop(outcome)

    def _recover(
        self, it: int, exc: WorkerCrashError, result: LoopResult
    ) -> int:
        """Answer a worker crash: restore state, rewind the records."""
        obs = self.observer
        obs.on_fault(it, "worker", "crash", {"reason": str(exc)})
        resume_at = self.backend.recover(it, obs)
        obs.on_recovery(
            it, "worker", "resume", {"resume_at": resume_at}
        )
        # Replayed iterations re-emit their records; drop the ones the
        # crash invalidated so the stream stays one record per index.
        result.records = [
            r for r in result.records if r.iteration < resume_at
        ]
        return resume_at

    def run(self) -> LoopResult:
        """Execute iterations until convergence or the cap."""
        obs = self.observer
        result = LoopResult()
        obs.on_run_start(self.backend.n_rows, self.max_iters)
        it = self.start_iteration
        while it < self.max_iters:
            obs.on_iteration_start(it)
            try:
                outcome = self.backend.run_iteration(it, obs)
                result.records.append(outcome.record)
                obs.on_iteration_end(it, outcome.record)
                self.backend.after_record(it, outcome, obs)
                if self.faults is not None and self.faults.worker_crash(it):
                    raise WorkerCrashError(
                        f"injected worker crash after iteration {it}"
                    )
            except WorkerCrashError as exc:
                it = self._recover(it, exc, result)
                continue
            if self._stopped(outcome):
                result.converged = True
                break
            it += 1
        obs.on_run_end(result.iterations, result.converged)
        return result
