"""The single iteration orchestrator every driver runs through.

``IterationLoop`` owns the skeleton the paper's three engines share:
step the numerics, replay them on the substrate, record the iteration,
fire the post-record hook (checkpointing), check convergence. The
backend supplies the substrate; the stopping rule is either a
:class:`~repro.core.ConvergenceCriteria` (the k-means drivers) or an
arbitrary ``should_stop`` callable (the generalized framework, which
delegates to the algorithm's own ``converged()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core import ConvergenceCriteria
from repro.errors import ConfigError, WorkerCrashError
from repro.metrics import IterationRecord, RunResult
from repro.runtime.backends import ExecutionBackend, IterationOutcome
from repro.runtime.observer import RunObserver, chain_observers


@dataclass
class LoopResult:
    """What one orchestrated run produced, before result assembly."""

    records: list[IterationRecord] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        return len(self.records)

    def as_run_result(
        self,
        *,
        algorithm: str,
        centroids: np.ndarray,
        assignment: np.ndarray,
        inertia: float,
        memory_breakdown: dict[str, int] | None = None,
        params: dict | None = None,
    ) -> RunResult:
        """Assemble the uniform :class:`RunResult` envelope."""
        return RunResult(
            algorithm=algorithm,
            centroids=centroids,
            assignment=assignment,
            iterations=self.iterations,
            converged=self.converged,
            inertia=inertia,
            records=self.records,
            memory_breakdown=memory_breakdown or {},
            params=params or {},
        )


class IterationLoop:
    """Run a backend to convergence (or the iteration cap).

    Parameters
    ----------
    backend:
        Any :class:`~repro.runtime.backends.ExecutionBackend`.
    criteria:
        k-means stopping rules; mutually exclusive with
        ``should_stop``. Supplies ``max_iters`` when given.
    should_stop:
        Custom predicate over each :class:`IterationOutcome`
        (the framework passes ``lambda out: algorithm.converged()``).
        Requires an explicit ``max_iters``.
    max_iters:
        Iteration cap; required with ``should_stop``, optional
        override alongside ``criteria``.
    observers:
        :class:`RunObserver` hooks; all events fan out to each, in
        order.
    start_iteration:
        First iteration index (non-zero when resuming a checkpointed
        run; the cap stays absolute, as in the paper's recovery).
    faults:
        Optional :class:`~repro.faults.FaultPlan`. The loop consults
        it at every iteration boundary (the paper's recovery unit):
        an injected worker crash -- or a
        :class:`~repro.errors.WorkerCrashError` escaping the backend,
        e.g. from a mid-checkpoint crash -- triggers
        ``backend.recover()``, which restores the newest checkpoint
        (or restarts from scratch) and reports the iteration to
        replay from. Replayed iterations overwrite their crashed
        records, so a recovered run's record stream is continuous.
    membership:
        Optional :class:`~repro.elastic.MembershipPlan` for
        single-machine substrates, where the only elastic event is a
        **spot preemption of the whole worker**. With notice, the loop
        finishes the grace window's iterations, asks the backend to
        flush a checkpoint (``flush_checkpoint``), and only then takes
        the planned loss -- so no committed iteration is ever lost;
        zero notice degrades to the plain worker-crash path. The plan
        must be wired to exactly one consumer: passing one here while
        the backend also holds one (``handles_membership``) is a
        configuration error, because both would draw the same RNG
        streams.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        *,
        criteria: ConvergenceCriteria | None = None,
        should_stop: Callable[[IterationOutcome], bool] | None = None,
        max_iters: int | None = None,
        observers: Sequence[RunObserver] = (),
        start_iteration: int = 0,
        faults: Any = None,
        membership: Any = None,
    ) -> None:
        if (criteria is None) == (should_stop is None):
            raise ConfigError(
                "pass exactly one of criteria / should_stop"
            )
        if should_stop is not None and max_iters is None:
            raise ConfigError("should_stop requires max_iters")
        if membership is not None and getattr(
            backend, "handles_membership", False
        ):
            raise ConfigError(
                "the backend already consumes this run's membership "
                "plan; wire the plan to exactly one consumer or both "
                "would draw the same event streams"
            )
        self.backend = backend
        self.criteria = criteria
        self.should_stop = should_stop
        self.max_iters = (
            max_iters if max_iters is not None else criteria.max_iters
        )
        self.observer = chain_observers(observers)
        self.start_iteration = start_iteration
        self.faults = faults
        self.membership = membership
        self._preempt_deadline: int | None = None
        self._result: LoopResult | None = None
        self._it = start_iteration
        self._done = False

    def _stopped(self, outcome: IterationOutcome) -> bool:
        if self.criteria is not None:
            return self.criteria.converged(
                self.backend.n_rows, outcome.n_changed, outcome.motion
            )
        return self.should_stop(outcome)

    def _recover(
        self, it: int, exc: WorkerCrashError, result: LoopResult
    ) -> int:
        """Answer a worker crash: restore state, rewind the records."""
        obs = self.observer
        obs.on_fault(it, "worker", "crash", {"reason": str(exc)})
        resume_at = self.backend.recover(it, obs)
        obs.on_recovery(
            it, "worker", "resume", {"resume_at": resume_at}
        )
        # Replayed iterations re-emit their records; drop the ones the
        # crash invalidated so the stream stays one record per index.
        result.records = [
            r for r in result.records if r.iteration < resume_at
        ]
        return resume_at

    def _poll_membership(self, it: int, obs: RunObserver) -> None:
        """Draw this boundary's preemption event, if any.

        Zero notice means the worker is gone before the iteration
        runs -- the plain crash path answers it. Otherwise the
        deadline is armed and the loop keeps computing through the
        grace window.
        """
        if self.membership is None or self._preempt_deadline is not None:
            return
        ev = self.membership.worker_preemption(it)
        if ev is None:
            return
        if ev.notice <= 0:
            obs.on_fault(it, "worker", "preempt", {"notice": 0})
            raise WorkerCrashError(
                f"zero-notice preemption at iteration {it}"
            )
        deadline = it + ev.notice - 1
        self._preempt_deadline = deadline
        obs.on_preempt_notice(
            it, ev.machine if ev.machine is not None else 0,
            deadline, {"notice": ev.notice},
        )

    def _maybe_preempt(
        self, it: int, outcome: IterationOutcome, obs: RunObserver
    ) -> None:
        """Honor an armed preemption deadline after its last committed
        iteration: flush a checkpoint if the substrate keeps one, then
        take the loss. With a flushed checkpoint, recovery resumes at
        ``it + 1`` and no committed record is dropped."""
        if self._preempt_deadline is None or it < self._preempt_deadline:
            return
        self._preempt_deadline = None
        flush = getattr(self.backend, "flush_checkpoint", None)
        flushed = (
            flush(it, outcome.n_changed, obs) if flush is not None
            else False
        )
        obs.on_fault(it, "worker", "preempt", {"flushed": flushed})
        raise WorkerCrashError(
            f"preempted after iteration {it} (notice honored; "
            f"checkpoint {'flushed' if flushed else 'unavailable'})"
        )

    def start(self) -> None:
        """Open the run (multi-tenant schedulers interleave ``step``)."""
        self._result = LoopResult()
        self._it = self.start_iteration
        self._done = False
        self._preempt_deadline = None
        self.observer.on_run_start(self.backend.n_rows, self.max_iters)

    @property
    def finished(self) -> bool:
        return self._done or self._it >= self.max_iters

    @property
    def consumed_sim_ns(self) -> float:
        """Simulated time of the records committed so far (what a
        fair-share scheduler charges a tenant for)."""
        if self._result is None:
            return 0.0
        return sum(r.sim_ns for r in self._result.records)

    def step(self) -> bool:
        """Run ONE iteration boundary; ``False`` when nothing is left.

        A boundary that crashes and recovers still counts as work done
        (it consumed simulated time), so it returns ``True``.
        """
        if self._result is None:
            raise ConfigError("call start() before step()")
        if self.finished:
            self._done = True
            return False
        it = self._it
        obs = self.observer
        result = self._result
        obs.on_iteration_start(it)
        try:
            self._poll_membership(it, obs)
            outcome = self.backend.run_iteration(it, obs)
            result.records.append(outcome.record)
            obs.on_iteration_end(it, outcome.record)
            self.backend.after_record(it, outcome, obs)
            if self.faults is not None and self.faults.worker_crash(it):
                raise WorkerCrashError(
                    f"injected worker crash after iteration {it}"
                )
            self._maybe_preempt(it, outcome, obs)
        except WorkerCrashError as exc:
            self._it = self._recover(it, exc, result)
            return True
        if self._stopped(outcome):
            result.converged = True
            self._done = True
        else:
            self._it += 1
        return True

    def finish(self) -> LoopResult:
        """Close the run and hand back its records."""
        if self._result is None:
            raise ConfigError("call start() before finish()")
        result = self._result
        self.observer.on_run_end(result.iterations, result.converged)
        return result

    def run(self) -> LoopResult:
        """Execute iterations until convergence or the cap."""
        self.start()
        while self.step():
            pass
        return self.finish()
