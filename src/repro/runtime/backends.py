"""Execution backends: the hardware side of the unified runtime.

A backend runs ONE iteration of a numerics source on its substrate and
returns the finished :class:`~repro.metrics.IterationRecord` plus what
the convergence check needs. Three substrates implement the protocol:

* :class:`InMemoryBackend` -- one simulated NUMA machine (knori,
  ``run_numa``): task blocks through a scheduler, engine replay,
  barrier + funnel reduction.
* :class:`SemBackend` -- the same machine plus the SAFS + row-cache
  I/O stack (knors, ``run_sem``): sync mode charges
  ``sim = max(span, io) + sync``; async mode routes reads through the
  SSD request queue and hides service time behind the previous
  iteration's compute (prefetch credit); optional checkpoint hook.
* :class:`DistributedBackend` -- a simulated cluster (knord): each
  machine drives its own shard of a :class:`ShardedProgram`, whose
  named accumulator payloads meet in a real tree-summed allreduce,
  every machine recomputing the identical global model
  (decentralized, Section 7). :class:`PureMpiBackend` reuses the same
  sharded program with the paper's NUMA-oblivious per-rank cost model
  (Section 8.9 baseline).

The distributed collective is algorithm-agnostic (clusterNOR's MM
frame): a shard contributes a ``dict[str, ndarray]`` of additive
accumulators -- centroid sums + counts for k-means, weighted
sums/squared sums for GMM, ... -- and the backend reduces each named
array in insertion order, charges one latency for the combined
payload, then hands the reduced accumulators to the program's
``minimize`` hook. :class:`ShardedKmeans` is the first such program;
:class:`~repro.runtime.mm.MMShardedProgram` adapts any
``MMAlgorithm``.

The exact numerics, counters and simulated costs are byte-identical to
the pre-runtime per-driver loops; only the orchestration moved here.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.errors import NodeFailureError, WorkerCrashError
from repro.metrics import IterationRecord
from repro.runtime.observer import RunObserver
from repro.runtime.sources import NumericsSource, StepStats
from repro.sched import build_task_blocks
from repro.sched.blocks import auto_task_rows
from repro.simhw import SimMachine


@dataclass
class IterationOutcome:
    """One executed iteration: its record plus convergence inputs."""

    record: IterationRecord
    n_changed: int
    motion: np.ndarray | None


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the :class:`IterationLoop` drives."""

    #: Total rows governed by this backend (convergence denominator).
    n_rows: int

    def run_iteration(
        self, iteration: int, observer: RunObserver
    ) -> IterationOutcome:  # pragma: no cover - protocol
        ...

    def after_record(
        self, iteration: int, outcome: IterationOutcome,
        observer: RunObserver,
    ) -> None:  # pragma: no cover - protocol
        ...

    def recover(
        self, iteration: int, observer: RunObserver
    ) -> int:  # pragma: no cover - protocol
        """Answer an injected worker crash after ``iteration``.

        Restore resumable state (newest checkpoint, or a from-scratch
        reset) and return the iteration index to replay from. Raises
        :class:`~repro.errors.WorkerCrashError` when the substrate
        cannot recover.
        """
        ...


class InMemoryBackend:
    """Section 5 substrate: scheduler + engine on one NUMA machine.

    With a straggler-capable fault plan attached, a thread may start
    running ``straggler_factor`` slower (timing plane only). A
    per-thread EWMA (:class:`~repro.resilience.StragglerDetector`)
    flags it; the work-stealing scheduler is what re-partitions the
    slow thread's queue onto healthy threads, and the backend surfaces
    that re-partition via ``on_straggler`` / ``on_rebalance``.
    """

    def __init__(
        self,
        machine: SimMachine,
        scheduler: Any,
        source: NumericsSource,
        *,
        n_rows: int,
        d: int,
        reduction_k: int,
        task_rows: int,
        faults: Any = None,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.source = source
        self.n_rows = n_rows
        self.d = d
        self.reduction_k = reduction_k
        self.task_rows = task_rows
        self.faults = faults
        self._straggler_detector = None
        if (
            faults is not None
            and getattr(faults, "straggler_enabled", False)
            and len(machine.threads) >= 2
        ):
            from repro.resilience import StragglerDetector

            # Threads inside a machine are heterogeneous (NUMA-local
            # vs remote banks, remainder blocks): only self-relative
            # drift is a fair straggler signal.
            self._straggler_detector = StragglerDetector(
                len(machine.threads), mode="self"
            )

    def _inject_straggler(
        self, iteration: int, observer: RunObserver
    ) -> None:
        threads = self.machine.threads
        candidates = [
            th.thread_id for th in threads if th.slow_factor == 1.0
        ]
        hit = self.faults.straggler(iteration, candidates)
        if hit is None:
            return
        tid, factor = hit
        threads[tid].slow_factor = factor
        observer.on_fault(
            iteration, "straggler", "slow",
            {"thread": tid, "factor": factor},
        )

    def _observe_stragglers(
        self, iteration: int, trace: Any, observer: RunObserver
    ) -> None:
        # Work stealing balances per-thread *clocks* (a slow thread
        # simply runs fewer tasks), so the observable straggler signal
        # is throughput -- time per row processed: a 4x-slow thread
        # shows 4x cost per row no matter how the scheduler
        # rebalances or how task sizes vary.
        det = self._straggler_detector
        threads = self.machine.threads
        clocks = np.asarray(trace.thread_clocks_ns, dtype=np.float64)
        rows = np.array(
            [th.counters.rows_processed for th in threads],
            dtype=np.float64,
        )
        per_row = np.divide(
            clocks, rows, out=np.zeros_like(clocks), where=rows > 0
        )
        fresh = det.observe(per_row)
        if not fresh:
            return
        for tid in fresh:
            observer.on_straggler(
                iteration, "thread", tid,
                {"ewma_ns": float(det.ewma[tid])},
            )
        flagged = sorted(det.flagged)
        on_flagged = sum(threads[t].counters.tasks_run for t in flagged)
        total = sum(th.counters.tasks_run for th in threads)
        observer.on_rebalance(
            iteration, "thread",
            {"flagged": flagged, "tasks_on_flagged": on_flagged,
             "total_tasks": total, "steals": trace.total_steals},
        )
        observer.on_recovery(
            iteration, "straggler", "rebalanced",
            {"threads": [int(t) for t in fresh]},
        )

    def _replay(
        self,
        stats: StepStats,
        iteration: int = 0,
        observer: RunObserver | None = None,
    ) -> Any:
        """Price one iteration's work on the machine."""
        if self._straggler_detector is not None and observer is not None:
            self._inject_straggler(iteration, observer)
        tasks = build_task_blocks(
            self.n_rows,
            self.d,
            self.machine,
            dist_per_row=stats.dist_per_row,
            needs_data=stats.needs_data,
            task_rows=self.task_rows,
            state_bytes_per_row=stats.state_bytes,
        )
        trace = self.machine.engine.run(
            self.scheduler, tasks, self.machine.threads,
            d=self.d, k=self.reduction_k,
        )
        if self._straggler_detector is not None and observer is not None:
            self._observe_stragglers(iteration, trace, observer)
        return trace

    def run_iteration(
        self, iteration: int, observer: RunObserver
    ) -> IterationOutcome:
        stats = self.source.step(iteration)
        trace = self._replay(stats, iteration, observer)
        observer.on_task_trace(iteration, trace)
        record = IterationRecord(
            iteration=iteration,
            sim_ns=trace.total_ns,
            n_changed=stats.n_changed,
            dist_computations=int(stats.dist_per_row.sum()),
            clause1_rows=stats.clause1_rows,
            clause2_pruned=stats.clause2_pruned,
            clause3_pruned=stats.clause3_pruned,
            busy_fraction=trace.busy_fraction,
            steals=trace.total_steals,
            rows_active=int(stats.needs_data.sum()),
        )
        return IterationOutcome(record, stats.n_changed, stats.motion)

    def after_record(self, iteration, outcome, observer) -> None:
        """In-memory runs have no post-record side effects."""

    def flush_checkpoint(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> bool:
        """Answer a preemption notice: persist resumable state if the
        substrate can. In-memory runs keep no checkpoints -- return
        ``False`` so the notice degrades to the plain crash path."""
        return False

    def recover(self, iteration: int, observer: RunObserver) -> int:
        """In-memory recovery is a deterministic from-scratch rerun
        (the paper offers no in-memory checkpointing)."""
        loop = getattr(self.source, "loop", None)
        if loop is None or not hasattr(loop, "reset"):
            raise WorkerCrashError(
                "in-memory backend cannot recover: source holds no "
                "resettable numerics loop"
            )
        loop.reset()
        return 0


@dataclass
class CheckpointHook:
    """knors' FlashGraph-style fault tolerance as a backend hook.

    Persists the numerics loop's O(n) resumable state every
    ``interval`` iterations (single-atomic-commit protocol; see
    :mod:`repro.sem.checkpoint`). With a fault plan attached, a save
    may be killed mid-protocol (``checkpoint`` site), which surfaces
    as a :class:`~repro.errors.WorkerCrashError` the iteration loop
    answers through ``backend.recover()``.
    """

    directory: str | Path
    interval: int
    loop: Any  # NumericsLoop (must offer export_state())
    params: dict
    faults: Any = None  # FaultPlan, for mid-save crash points

    def maybe_save(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> None:
        if (iteration + 1) % self.interval != 0:
            return
        self._save(iteration, n_changed, observer)

    def force_save(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> None:
        """Flush a checkpoint now regardless of the interval -- the
        preemption-notice grace window uses this so a planned loss
        never discards a committed iteration. The save runs the same
        single-atomic-commit protocol (and the same fault sites) as an
        interval save."""
        self._save(iteration, n_changed, observer)

    def _save(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> None:
        from repro.sem.checkpoint import CheckpointState, save_checkpoint

        crash_point = (
            self.faults.checkpoint_crash(iteration)
            if self.faults is not None
            else None
        )
        if crash_point is not None:
            observer.on_fault(
                iteration, "checkpoint", crash_point, {}
            )
        snap = self.loop.export_state()
        save_checkpoint(
            self.directory,
            CheckpointState(
                iteration=snap["iteration"],
                centroids=snap["centroids"],
                prev_centroids=snap["prev_centroids"],
                assignment=snap["assignment"],
                ub=snap.get("ub"),
                sums=snap.get("sums"),
                counts=snap.get("counts"),
                n_changed=n_changed,
                params=self.params,
            ),
            crash_point=crash_point,
        )
        if self.faults is not None and self.faults.checkpoint_corruption(
            iteration
        ):
            from repro.sem.checkpoint import corrupt_checkpoint

            offset = corrupt_checkpoint(self.directory)
            observer.on_fault(
                iteration, "corruption", "checkpoint",
                {"offset": offset},
            )
        observer.on_checkpoint(iteration, self.directory)

    def try_restore(
        self, iteration: int, observer: RunObserver
    ) -> int | None:
        """Restore the newest checkpoint into the loop, if loadable.

        Returns the iteration to resume at, or ``None`` when no usable
        checkpoint exists. A checkpoint whose CRC32s do not match its
        arrays is quarantined (never restored) and recovery falls back
        to the caller's from-scratch path -- slower, still
        bit-identical.
        """
        from repro.errors import CorruptionError
        from repro.sem.checkpoint import (
            discard_checkpoint,
            has_checkpoint,
            load_checkpoint,
        )

        if not has_checkpoint(self.directory):
            return None
        try:
            ckpt = load_checkpoint(self.directory)
        except CorruptionError as exc:
            observer.on_corruption(
                iteration, "checkpoint", {"error": str(exc)}
            )
            discarded = discard_checkpoint(self.directory)
            observer.on_quarantine(
                iteration, "checkpoint", str(self.directory),
                {"files_removed": discarded},
            )
            return None
        self.loop.restore_state(
            {
                "iteration": ckpt.iteration,
                "centroids": ckpt.centroids,
                "prev_centroids": ckpt.prev_centroids,
                "assignment": ckpt.assignment,
                "ub": ckpt.ub,
                "sums": ckpt.sums,
                "counts": ckpt.counts,
            }
        )
        return ckpt.iteration


class SemBackend(InMemoryBackend):
    """Section 6 substrate: InMemory compute overlapped with the
    SAFS + row-cache I/O pipeline.

    Two I/O accounting modes (``--sync-io`` / ``--async-io``):

    * ``"sync"`` -- the original serialized formula,
      ``max(span, service) + barrier + reduction``.
    * ``"async"`` -- reads go through the SSD array's request queue
      (amortized per-request cost) and an
      :class:`~repro.simhw.engine.AsyncIoTimeline` hides service time
      behind the previous iteration's compute once the row cache has
      revealed an active set. Numerics and every cache/request counter
      are bit-identical across modes; only simulated time moves.
    """

    def __init__(
        self,
        machine: SimMachine,
        scheduler: Any,
        source: NumericsSource,
        io_engine: Any,
        *,
        n_rows: int,
        d: int,
        reduction_k: int,
        task_rows: int,
        checkpoint: CheckpointHook | None = None,
        io_mode: str = "sync",
        faults: Any = None,
    ) -> None:
        super().__init__(
            machine, scheduler, source,
            n_rows=n_rows, d=d, reduction_k=reduction_k,
            task_rows=task_rows, faults=faults,
        )
        if io_mode not in ("sync", "async"):
            from repro.errors import ConfigError

            raise ConfigError(
                f"io_mode must be 'sync' or 'async', got {io_mode!r}"
            )
        self.io_engine = io_engine
        self.checkpoint = checkpoint
        self.io_mode = io_mode
        from repro.simhw.engine import AsyncIoTimeline

        self.io_timeline = AsyncIoTimeline()

    def run_iteration(
        self, iteration: int, observer: RunObserver
    ) -> IterationOutcome:
        stats = self.source.step(iteration)
        io = self.io_engine.run_iteration(
            iteration, stats.needs_data, observer=observer
        )
        if self.io_mode == "async":
            placement = self.io_timeline.plan(
                io.service_async_ns, prefetchable=io.prefetchable
            )
        else:
            placement = None
        observer.on_io_issue(
            iteration, io.rows_requested, io.pages_from_ssd,
            placement.prefetched if placement is not None else False,
        )
        observer.on_io(iteration, io)
        trace = self._replay(stats, iteration, observer)
        observer.on_task_trace(iteration, trace)
        if placement is not None:
            # Compute waits only behind the service time the prefetcher
            # could not hide; the rest rode under last iteration's span.
            sim_ns = self.io_timeline.commit(
                placement, trace.span_ns,
                trace.barrier_ns, trace.reduction_ns,
            )
            observer.on_io_complete(
                iteration, placement.service_ns,
                placement.hidden_ns, placement.blocked_ns,
            )
        else:
            # Sync I/O overlaps the compute span (Section 6): the longer
            # of the two dominates, then everyone meets at the barrier.
            sim_ns = (
                max(trace.span_ns, io.service_ns)
                + trace.barrier_ns
                + trace.reduction_ns
            )
            observer.on_io_complete(
                iteration, io.service_ns, 0.0, io.service_ns
            )
        record = IterationRecord(
            iteration=iteration,
            sim_ns=sim_ns,
            n_changed=stats.n_changed,
            dist_computations=int(stats.dist_per_row.sum()),
            clause1_rows=stats.clause1_rows,
            clause2_pruned=stats.clause2_pruned,
            clause3_pruned=stats.clause3_pruned,
            busy_fraction=trace.busy_fraction,
            steals=trace.total_steals,
            bytes_requested=io.bytes_requested,
            bytes_read=io.bytes_read,
            io_requests=io.merged_requests,
            cache_hits=io.row_cache_hits,
            cache_misses=io.rows_requested,
            rows_active=io.rows_needed,
        )
        return IterationOutcome(record, stats.n_changed, stats.motion)

    def after_record(self, iteration, outcome, observer) -> None:
        if self.checkpoint is not None:
            self.checkpoint.maybe_save(
                iteration, outcome.n_changed, observer
            )

    def flush_checkpoint(
        self, iteration: int, n_changed: int, observer: RunObserver
    ) -> bool:
        """Answer a preemption notice with an out-of-interval save."""
        if self.checkpoint is None:
            return False
        self.checkpoint.force_save(iteration, n_changed, observer)
        return True

    def recover(self, iteration: int, observer: RunObserver) -> int:
        """Resume from the newest checkpoint (the paper's lightweight
        recovery); fall back to a from-scratch rerun without one.

        The caches restart cold either way -- cache state is pure
        timing, so the replayed numerics stay bit-identical.

        The restore itself is delegated to the checkpoint hook's
        ``try_restore`` (the hook knows its own on-disk format:
        kmeans v3 state or the generic MM v4 arrays), which keeps this
        backend algorithm-agnostic.
        """
        resume_at = None
        if self.checkpoint is not None:
            resume_at = self.checkpoint.try_restore(iteration, observer)
        if resume_at is None:
            resume_at = super().recover(iteration, observer)
        rc = getattr(self.io_engine, "row_cache", None)
        if rc is not None:
            rc.clear()
            if resume_at > 0:
                rc.fast_forward(resume_at - 1)
        self.io_engine.safs.page_cache.clear()
        # The async pipeline restarts cold with the caches: banked
        # prefetch credit died with the crashed workers.
        self.io_timeline.reset()
        return resume_at


class ShardedProgram:
    """A sharded MM program: the algorithm side of the distributed
    backends, generalized over named accumulator payloads.

    Subclasses provide the numerics:

    * ``n_rows`` / ``n_shards`` / ``shard_rows()`` -- row geometry;
    * ``step(si)`` -- shard ``si``'s :class:`StepStats` for this
      iteration;
    * ``payload(si)`` -- shard ``si``'s additive accumulator
      contribution, a ``dict[str, ndarray]`` with identical keys and
      shapes across shards;
    * ``minimize(reduced)`` -- fold the reduced accumulators into the
      global model (broadcast is implicit: every simulated machine
      recomputes the same model, Section 7);
    * ``reset()`` -- rewind to iteration 0 (crash recovery);
    * ``model_array`` -- the model as one ndarray (the collective's
      corruption-CRC payload).

    The collective itself lives here and is algorithm-agnostic: one
    tree-summed allreduce per named array, in payload insertion order,
    then a single latency charge sized by the combined payload. The
    ``allreduce`` class attribute selects the charged schedule
    (``"tree"`` | ``"rect"``, see :mod:`repro.dist.mpi`); reduced
    values are bit-identical across schedules.
    """

    #: Collective schedule; subclasses/instances may override.
    allreduce = "tree"

    def reduce_and_broadcast(
        self,
        comm: Any,
        payloads: list[dict[str, np.ndarray]],
        timing_comm: Any = None,
    ) -> tuple[int, int, float]:
        """Allreduce every named accumulator and update the model.

        Returns ``(payload_bytes, wire_bytes, allreduce_ns)``.

        ``timing_comm``, when given, prices the collective's latency
        over a different rank count than the arithmetic ran on. The
        elastic backend uses it after membership churn: the summation
        stays over all ``n_shards`` contributions forever (bit-identity
        of the reduced values), while the charged time follows the
        machines actually alive.
        """
        mode = getattr(self, "allreduce", "tree")
        reduced: dict[str, np.ndarray] = {}
        wire = 0
        # +8: the iteration header rides along with the accumulators.
        payload_bytes = 8
        for key in payloads[0]:
            red = comm.allreduce_sum([p[key] for p in payloads], mode=mode)
            reduced[key] = red.value
            wire += red.bytes_on_wire
            payload_bytes += red.value.nbytes
        clock = comm if timing_comm is None else timing_comm
        allreduce_ns = clock.allreduce_ns(payload_bytes, mode=mode)
        self.minimize(reduced)
        return payload_bytes, wire, allreduce_ns


class ShardedKmeans(ShardedProgram):
    """Per-shard :class:`NumericsLoop` fleet with a shared global view.

    Each shard's loop owns that shard's persistent pruning state; after
    every collective the reduced global centroids are pushed back into
    all loops, so each loop's next step sees exactly what a
    decentralized driver on that machine would.
    """

    def __init__(
        self,
        x: np.ndarray,
        centroids0: np.ndarray,
        pruning: str | None,
        n_shards: int,
        k: int,
        *,
        empty_cluster: str = "drop",
        kernel: str = "blocked",
        allreduce: str = "tree",
    ) -> None:
        from repro.core.distance import check_kernel
        from repro.core.empty import check_empty_cluster_policy
        from repro.dist.mpi import check_allreduce
        from repro.drivers.common import NumericsLoop

        n = x.shape[0]
        self.x = x
        self.n_rows = n
        self.k = k
        self.pruning = pruning
        # A shard legitimately holds zero members of some clusters, so
        # the policy applies to the *global* counts at the allreduce;
        # shard loops always run with the permissive default.
        self.empty_cluster = check_empty_cluster_policy(empty_cluster)
        self.kernel = check_kernel(kernel)
        self.allreduce = check_allreduce(allreduce)
        self._centroids0 = np.array(
            centroids0, dtype=np.float64, copy=True
        )
        self.bounds = np.linspace(0, n, n_shards + 1, dtype=np.int64)
        self.shards = [
            x[self.bounds[i]: self.bounds[i + 1]]
            for i in range(n_shards)
        ]
        self.loops = [
            NumericsLoop(
                shard, centroids0, pruning, n_partitions=1,
                kernel=kernel,
            )
            for shard in self.shards
        ]
        self.centroids = self._centroids0.copy()

    def reset(self) -> None:
        """Rewind every shard loop to the initial centroids (crash
        recovery's from-scratch rerun; sharding is unchanged)."""
        for loop in self.loops:
            loop.reset()
        self.centroids = self._centroids0.copy()

    @property
    def n_shards(self) -> int:
        return len(self.loops)

    def shard_rows(self) -> list[int]:
        return [s.shape[0] for s in self.shards]

    def step(self, mi: int) -> StepStats:
        num = self.loops[mi].step()
        return StepStats(
            dist_per_row=num.dist_per_row,
            needs_data=num.needs_data,
            n_changed=num.n_changed,
            motion=num.motion,
            clause1_rows=num.clause1_rows,
            clause2_pruned=num.clause2_pruned,
            clause3_pruned=num.clause3_pruned,
        )

    def payload(self, mi: int) -> dict[str, np.ndarray]:
        """Shard ``mi``'s accumulators: centroid sums + float counts.

        Key order is the wire order (sums first, then counts), which
        preserves the pre-generalization collective byte-for-byte.
        """
        sums, counts = self.loops[mi].partial_sums_counts()
        return {"sums": sums, "counts": counts.astype(np.float64)}

    def minimize(self, reduced: dict[str, np.ndarray]) -> None:
        """Recompute and install the global centroids from the
        reduced accumulators (the k-means M-step)."""
        counts = reduced["counts"]
        if self.empty_cluster == "error" and not (counts > 0).all():
            from repro.errors import EmptyClusterError

            empty = np.nonzero(counts == 0)[0]
            raise EmptyClusterError(
                f"clusters {empty.tolist()} lost all members globally "
                f"(empty_cluster='error')"
            )
        new_centroids = self.centroids.copy()
        nonzero = counts > 0
        new_centroids[nonzero] = (
            reduced["sums"][nonzero] / counts[nonzero, None]
        )
        self.centroids = new_centroids
        for loop in self.loops:
            loop.centroids = new_centroids

    @property
    def model_array(self) -> np.ndarray:
        return self.centroids

    @property
    def assignment(self) -> np.ndarray:
        return np.concatenate([lp.assignment for lp in self.loops])


class DistributedBackend:
    """Section 7 substrate: one knori-style machine per shard plus the
    cluster allreduce; an iteration takes as long as its slowest
    machine plus the collective.

    With a fault plan attached, two distributed failure modes fire:

    * **node failure** -- a machine dies permanently at an iteration
      boundary. Under ``node_failure_mode="degraded"`` its shards are
      reassigned round-robin to survivors, which then execute several
      shards serially (slower, but the shard-ordered numerics and the
      allreduce tree are untouched, so results stay bit-identical);
      ``"abort"`` raises a clean
      :class:`~repro.errors.NodeFailureError`.
    * **dropped allreduce transmissions** -- each drop charges the
      detection timeout plus a full retransmission.

    The resilience layer adds two degraded modes: a **slow node**
    (``straggler`` site) keeps executing its shards at
    ``straggler_factor`` cost until the per-machine EWMA flags it and
    its shards are re-sharded onto healthy machines -- the cluster
    runs at reduced capacity instead of waiting on the slow node --
    and a **corrupted allreduce payload** (``corruption`` site) is
    CRC32-detected and retransmitted under the retry budget.
    """

    def __init__(
        self,
        cluster: Any,
        schedulers: list[Any],
        sharded: ShardedProgram,
        *,
        d: int,
        k: int,
        task_rows: int | None,
        state_bytes: int,
        faults: Any = None,
        retry_policy: Any = None,
        membership: Any = None,
        autoscaler: Any = None,
    ) -> None:
        self.cluster = cluster
        self.schedulers = schedulers
        self.sharded = sharded
        self.n_rows = sharded.n_rows
        self.d = d
        self.k = k
        self.task_rows = task_rows
        self.state_bytes = state_bytes
        self.faults = faults
        if retry_policy is None:
            from repro.faults import DEFAULT_RETRY_POLICY

            retry_policy = DEFAULT_RETRY_POLICY
        self.retry_policy = retry_policy
        #: Which machine executes each shard (reassigned on failure).
        self.shard_owner = list(range(sharded.n_shards))
        self.failed: set[int] = set()
        # -- elastic plane (membership churn / autoscaling) ------------
        self.membership = membership
        self.autoscaler = autoscaler
        #: The backend consumes the membership plan itself; the
        #: iteration loop must not double-draw the same streams.
        self.handles_membership = (
            membership is not None or autoscaler is not None
        )
        #: Machines that left by plan (drain/preempt/scale-down) --
        #: distinct from ``failed`` so counters tell churn from crashes.
        self.departed: set[int] = set()
        #: Preempt-with-notice victims: machine -> last iteration it
        #: completes before the planned loss.
        self._preempt_deadlines: dict[int, int] = {}
        #: Set on the FIRST actual membership change. Until then the
        #: allreduce is priced by the original ``cluster.comm`` on the
        #: exact pre-elastic code path (zero-event plans stay
        #: bit-identical, timing included).
        self._timing_comm: Any = None
        #: Simulated drain/reshard transfer time charged to the next
        #: committing iteration.
        self._boundary_ns = 0.0
        #: Machines running slow (machine -> factor), and the EWMA
        #: detector that flags them for re-sharding.
        self.slowed: dict[int, float] = {}
        self._machine_detector = None
        if (
            faults is not None
            and getattr(faults, "straggler_enabled", False)
            and cluster.n_machines >= 2
        ):
            from repro.resilience import StragglerDetector

            self._machine_detector = StragglerDetector(
                cluster.n_machines
            )

    def _alive(self) -> list[int]:
        return [
            m for m in range(self.cluster.n_machines)
            if m not in self.failed and m not in self.departed
        ]

    def _maybe_fail_node(
        self, iteration: int, observer: RunObserver
    ) -> None:
        """Consult the plan for a machine loss at this boundary."""
        victim = self.faults.node_failure(iteration, self._alive())
        if victim is None:
            return
        observer.on_fault(
            iteration, "node", "fail", {"machine": victim}
        )
        self._fail_machine(iteration, victim, observer)

    def _fail_machine(
        self, iteration: int, victim: int, observer: RunObserver
    ) -> None:
        """Unplanned loss: the machine is gone NOW, its shards reshard
        round-robin onto survivors (or the run aborts cleanly). Both
        node failures and zero-notice preemptions land here."""
        alive = self._alive()
        survivors = [m for m in alive if m != victim]
        if self.retry_policy.node_failure_mode == "abort" or not survivors:
            raise NodeFailureError(
                f"machine {victim} failed at iteration {iteration}"
                + ("" if survivors else " (no survivors)")
            )
        self.failed.add(victim)
        self._preempt_deadlines.pop(victim, None)
        if self._machine_detector is not None:
            # A dead machine must not dilute the healthy-median
            # baseline the straggler detector compares against.
            self._machine_detector.flagged.add(victim)
        moved = [
            s for s, owner in enumerate(self.shard_owner)
            if owner == victim
        ]
        for j, s in enumerate(moved):
            self.shard_owner[s] = survivors[j % len(survivors)]
        if self.handles_membership:
            self._refresh_timing()
        observer.on_recovery(
            iteration, "node", "reshard",
            {"machine": victim, "shards": moved,
             "survivors": len(survivors)},
        )

    # -- elastic plane -------------------------------------------------

    def _refresh_timing(self) -> None:
        """Reprice the collective over the machines actually alive.

        Only called once membership really changed; the arithmetic
        communicator (``cluster.comm``) keeps its original rank count
        forever so reduced values never move."""
        from repro.dist.mpi import SimComm

        self._timing_comm = SimComm(
            max(1, len(self._alive())), self.cluster.network
        )

    def _transfer_ns(self, shards: list[int]) -> float:
        """Simulated time to move ``shards`` over the interconnect
        (rows + per-row resumable state, one bulk message)."""
        if not shards:
            return 0.0
        rows = self.sharded.shard_rows()
        nbytes = sum(
            rows[s] * (self.d * 8 + self.state_bytes) for s in shards
        )
        return self.cluster.network.message_ns(nbytes)

    def _drain_machine(
        self, iteration: int, victim: int, observer: RunObserver,
        *, kind: str,
    ) -> float:
        """Planned loss: move the victim's shards to survivors BEFORE
        it goes away, paying honest transfer time. Nothing is lost --
        every machine holds the full model (decentralized, Section 7),
        so a drain is pure ownership movement."""
        alive = self._alive()
        if victim not in alive or len(alive) <= 1:
            return 0.0
        survivors = [m for m in alive if m != victim]
        moved = [
            s for s, owner in enumerate(self.shard_owner)
            if owner == victim
        ]
        for j, s in enumerate(moved):
            self.shard_owner[s] = survivors[j % len(survivors)]
        self.departed.add(victim)
        self._preempt_deadlines.pop(victim, None)
        if self._machine_detector is not None:
            self._machine_detector.flagged.add(victim)
        self._refresh_timing()
        drain_ns = self._transfer_ns(moved)
        observer.on_scale_down(
            iteration, victim,
            {"kind": kind, "shards": moved, "drain_ns": drain_ns},
        )
        if moved:
            observer.on_recovery(
                iteration, "membership", "reshard-drain",
                {"machine": victim, "shards": moved, "kind": kind},
            )
        return drain_ns

    def _join_machines(
        self, iteration: int, count: int, observer: RunObserver,
        *, why: str,
    ) -> float:
        """Scale-up: provision identical machines and reshard onto the
        joiners (the inverse of the survivor path) until shard load is
        balanced, paying honest transfer time for every moved shard."""
        new = self.cluster.add_machines(count)
        if self._machine_detector is not None:
            self._machine_detector.grow(self.cluster.n_machines)
        self._refresh_timing()
        moves = self._rebalance_onto_joiners()
        join_ns = self._transfer_ns([s for s, _src, _dst in moves])
        for m in new:
            observer.on_scale_up(
                iteration, m, {"why": why, "n_machines": len(self._alive())},
            )
        if moves:
            observer.on_recovery(
                iteration, "membership", "reshard-join",
                {"machines": new, "moves": moves},
            )
        return join_ns

    def _rebalance_onto_joiners(self) -> list[tuple[int, int, int]]:
        """Greedy deterministic balance: repeatedly move the highest-
        index shard off the most-loaded machine onto the least-loaded
        until the spread is <= 1 shard. Ownership is pure timing; the
        shard-ordered numerics and the allreduce are untouched."""
        alive = self._alive()
        load = {m: 0 for m in alive}
        for owner in self.shard_owner:
            if owner in load:
                load[owner] += 1
        moves: list[tuple[int, int, int]] = []
        while True:
            src = max(alive, key=lambda m: (load[m], -m))
            dst = min(alive, key=lambda m: (load[m], m))
            if load[src] - load[dst] <= 1:
                break
            shard = max(
                s for s, owner in enumerate(self.shard_owner)
                if owner == src
            )
            self.shard_owner[shard] = dst
            load[src] -= 1
            load[dst] += 1
            moves.append((int(shard), int(src), int(dst)))
        return moves

    def _pick_drain_victim(self) -> int | None:
        """Scale-down victim: the least-loaded alive machine (ties to
        the highest index -- prefer releasing the newest capacity)."""
        alive = self._alive()
        if len(alive) <= 1:
            return None
        load = {m: 0 for m in alive}
        for owner in self.shard_owner:
            if owner in load:
                load[owner] += 1
        return min(alive, key=lambda m: (load[m], -m))

    def _apply_membership(
        self, iteration: int, observer: RunObserver
    ) -> None:
        """Process every elastic event due at this iteration boundary.

        Order is fixed (expired preempt notices, autoscaler grants and
        releases, then plan events) so the whole trace is a pure
        function of the plan and policy state."""
        ns = 0.0
        for victim in sorted(self._preempt_deadlines):
            if iteration > self._preempt_deadlines[victim]:
                ns += self._drain_machine(
                    iteration, victim, observer, kind="preempt"
                )
        if self.autoscaler is not None:
            grants = self.autoscaler.take_grants()
            if grants:
                ns += self._join_machines(
                    iteration, grants, observer, why="autoscale"
                )
            if self.autoscaler.take_scale_down():
                victim = self._pick_drain_victim()
                if victim is not None:
                    ns += self._drain_machine(
                        iteration, victim, observer, kind="scale-down"
                    )
        if self.membership is not None:
            for ev in self.membership.poll(iteration, self._alive()):
                if ev.kind == "join":
                    ns += self._join_machines(
                        iteration, ev.count, observer, why="plan"
                    )
                elif ev.kind == "leave":
                    ns += self._drain_machine(
                        iteration, ev.machine, observer, kind="leave"
                    )
                elif ev.notice <= 0:
                    # Zero-notice preemption degrades to the unplanned
                    # node-failure path: the machine is simply gone.
                    observer.on_fault(
                        iteration, "node", "preempt",
                        {"machine": ev.machine},
                    )
                    self._fail_machine(iteration, ev.machine, observer)
                elif ev.machine not in self._preempt_deadlines:
                    deadline = iteration + ev.notice - 1
                    self._preempt_deadlines[ev.machine] = deadline
                    observer.on_preempt_notice(
                        iteration, ev.machine, deadline,
                        {"notice": ev.notice},
                    )
        self._boundary_ns += ns

    def _observe_autoscaler(
        self, iteration: int, sim_ns: float
    ) -> None:
        """Feed the finished iteration to the autoscaler policy."""
        from repro.mem import current_manager

        alive = self._alive()
        stragglers = 0
        if self._machine_detector is not None:
            stragglers = sum(
                1 for m in self._machine_detector.flagged if m in alive
            )
        self.autoscaler.observe(
            iteration, sim_ns,
            n_machines=len(alive),
            stragglers=stragglers,
            mem=current_manager().counters(),
        )

    def _maybe_straggle_node(
        self, iteration: int, observer: RunObserver
    ) -> None:
        """Consult the plan for a machine starting to run slow."""
        candidates = [
            m for m in self._alive() if m not in self.slowed
        ]
        hit = self.faults.straggler(iteration, candidates)
        if hit is None:
            return
        victim, factor = hit
        self.slowed[victim] = factor
        for th in self.cluster.machines[victim].threads:
            th.slow_factor = factor
        observer.on_fault(
            iteration, "straggler", "slow",
            {"machine": victim, "factor": factor},
        )

    def _observe_machines(
        self,
        iteration: int,
        machine_ns: dict[int, float],
        observer: RunObserver,
    ) -> None:
        """EWMA-track per-machine times; re-shard off flagged machines.

        A flagged machine keeps running (it is slow, not dead): its
        shards move to the least-loaded healthy machines and the
        cluster continues at reduced capacity. Ownership is pure
        timing -- the shard-ordered numerics and the allreduce tree
        are untouched, so results stay bit-identical.
        """
        det = self._machine_detector
        # Normalize by shards owned: a survivor that adopted a failed
        # machine's shard runs 2x the work serially -- that is load,
        # not sickness, and must not read as straggling.
        owned = np.zeros(det.n_workers)
        for o in self.shard_owner:
            owned[o] += 1
        times = np.zeros(det.n_workers)
        for mi, t in machine_ns.items():
            times[mi] = t / max(1.0, owned[mi])
        fresh = det.observe(times)
        if not fresh:
            return
        for mi in fresh:
            observer.on_straggler(
                iteration, "machine", mi,
                {"ewma_ns": float(det.ewma[mi])},
            )
        healthy = [
            m for m in self._alive() if m not in det.flagged
        ]
        if not healthy:
            return
        moves = []
        for mi in fresh:
            owned = [
                s for s, o in enumerate(self.shard_owner) if o == mi
            ]
            for s in owned:
                target = min(
                    (sum(1 for o in self.shard_owner if o == m), m)
                    for m in healthy
                )[1]
                self.shard_owner[s] = target
                moves.append((int(s), int(mi), int(target)))
        if moves:
            observer.on_rebalance(
                iteration, "machine", {"moves": moves}
            )
            observer.on_recovery(
                iteration, "straggler", "resharded",
                {"machines": [int(m) for m in fresh],
                 "shards": len(moves)},
            )

    def run_iteration(
        self, iteration: int, observer: RunObserver
    ) -> IterationOutcome:
        if self.handles_membership:
            self._apply_membership(iteration, observer)
        if self.faults is not None:
            self._maybe_fail_node(iteration, observer)
            if self._machine_detector is not None:
                self._maybe_straggle_node(iteration, observer)
        payloads: list[dict[str, np.ndarray]] = []
        n_changed = 0
        machine_ns: dict[int, float] = {}
        dist_total = 0
        clause1 = clause2 = clause3 = 0
        steals = 0
        busy: list[float] = []
        motion: np.ndarray | None = None
        shard_rows = self.sharded.shard_rows()

        for si in range(self.sharded.n_shards):
            stats = self.sharded.step(si)
            if stats.motion is not None:
                motion = stats.motion
            payloads.append(self.sharded.payload(si))

            mi = self.shard_owner[si]
            machine = self.cluster.machines[mi]
            sn = shard_rows[si]
            tasks = build_task_blocks(
                sn,
                self.d,
                machine,
                dist_per_row=stats.dist_per_row,
                needs_data=stats.needs_data,
                task_rows=(
                    auto_task_rows(sn, machine.n_threads)
                    if self.task_rows is None
                    else min(self.task_rows, max(1, sn))
                ),
                state_bytes_per_row=self.state_bytes,
            )
            trace = machine.engine.run(
                self.schedulers[si], tasks, machine.threads,
                d=self.d, k=self.k,
            )
            observer.on_task_trace(iteration, trace, machine_index=mi)
            # A machine that adopted extra shards runs them serially.
            machine_ns[mi] = machine_ns.get(mi, 0.0) + trace.total_ns
            dist_total += int(stats.dist_per_row.sum())
            clause1 += stats.clause1_rows
            clause2 += stats.clause2_pruned
            clause3 += stats.clause3_pruned
            steals += trace.total_steals
            busy.append(trace.busy_fraction)
            n_changed += stats.n_changed

        if self._machine_detector is not None:
            self._observe_machines(iteration, machine_ns, observer)

        payload, wire, allreduce_ns = (
            self.sharded.reduce_and_broadcast(
                self.cluster.comm, payloads,
                timing_comm=self._timing_comm,
            )
        )
        if self.faults is not None:
            from repro.faults import faulty_collective_ns

            allreduce_ns = faulty_collective_ns(
                self.faults, self.retry_policy, iteration,
                allreduce_ns, observer,
                payload=self.sharded.model_array,
            )
        observer.on_collective(iteration, payload, wire, allreduce_ns)

        boundary_ns, self._boundary_ns = self._boundary_ns, 0.0
        sim_ns = max(machine_ns.values()) + allreduce_ns + boundary_ns
        record = IterationRecord(
            iteration=iteration,
            sim_ns=sim_ns,
            n_changed=n_changed,
            dist_computations=dist_total,
            clause1_rows=clause1,
            clause2_pruned=clause2,
            clause3_pruned=clause3,
            busy_fraction=float(np.mean(busy)),
            steals=steals,
            network_bytes=wire,
            allreduce_ns=allreduce_ns,
            machines_alive=len(self._alive()),
        )
        if self.autoscaler is not None:
            self._observe_autoscaler(iteration, sim_ns)
        return IterationOutcome(record, n_changed, motion)

    def after_record(self, iteration, outcome, observer) -> None:
        """Distributed runs have no post-record side effects."""

    def recover(self, iteration: int, observer: RunObserver) -> int:
        """Distributed crash recovery is a from-scratch rerun on the
        surviving fleet (knord keeps no checkpoints; Section 7)."""
        self.sharded.reset()
        return 0


class PureMpiBackend:
    """Section 8.9 baseline: identical sharded numerics, but one
    single-threaded unpinned rank per core -- per-rank compute pays the
    NUMA penalty and the allreduce spans every rank, not one per
    machine. The knord-vs-MPI gap is therefore pure NUMA dividend."""

    def __init__(
        self,
        comm: Any,
        sharded: ShardedProgram,
        *,
        dist_col_ns: float,
        row_overhead_ns: float,
        numa_penalty: float,
        faults: Any = None,
        retry_policy: Any = None,
        membership: Any = None,
        autoscaler: Any = None,
    ) -> None:
        if getattr(sharded, "allreduce", "tree") != "tree":
            from repro.errors import ConfigError

            raise ConfigError(
                "the pure-MPI baseline supports allreduce='tree' only: "
                "its flat one-rank-per-core space has no "
                "one-rank-per-machine grid for the rectangular schedule"
            )
        if membership is not None or autoscaler is not None:
            from repro.errors import ConfigError

            raise ConfigError(
                "the pure-MPI baseline is a fixed-rank world: MPI "
                "communicators cannot grow or shrink mid-run, so "
                "elastic membership plans and autoscaling are not "
                "supported (use the knord backend)"
            )
        self.comm = comm
        self.sharded = sharded
        self.n_rows = sharded.n_rows
        self.dist_col_ns = dist_col_ns
        self.row_overhead_ns = row_overhead_ns
        self.numa_penalty = numa_penalty
        self.faults = faults
        if retry_policy is None:
            from repro.faults import DEFAULT_RETRY_POLICY

            retry_policy = DEFAULT_RETRY_POLICY
        self.retry_policy = retry_policy

    def run_iteration(
        self, iteration: int, observer: RunObserver
    ) -> IterationOutcome:
        payloads: list[dict[str, np.ndarray]] = []
        n_changed = 0
        rank_ns: list[float] = []
        dist_total = 0
        motion: np.ndarray | None = None
        shard_rows = self.sharded.shard_rows()

        for ri in range(self.sharded.n_shards):
            stats = self.sharded.step(ri)
            if stats.motion is not None:
                motion = stats.motion
            payloads.append(self.sharded.payload(ri))
            sn = shard_rows[ri]
            n_dist = int(stats.dist_per_row.sum())
            # Single-threaded rank, unpinned: NUMA penalty, no SMT.
            rank_ns.append(
                (n_dist * self.dist_col_ns + sn * self.row_overhead_ns)
                * self.numa_penalty
            )
            dist_total += n_dist
            n_changed += stats.n_changed

        payload, wire, allreduce_ns = (
            self.sharded.reduce_and_broadcast(self.comm, payloads)
        )
        if self.faults is not None:
            from repro.faults import faulty_collective_ns

            allreduce_ns = faulty_collective_ns(
                self.faults, self.retry_policy, iteration,
                allreduce_ns, observer,
                payload=self.sharded.model_array,
            )
        observer.on_collective(iteration, payload, wire, allreduce_ns)

        record = IterationRecord(
            iteration=iteration,
            sim_ns=max(rank_ns) + allreduce_ns,
            n_changed=n_changed,
            dist_computations=dist_total,
            network_bytes=wire,
            allreduce_ns=allreduce_ns,
        )
        return IterationOutcome(record, n_changed, motion)

    def after_record(self, iteration, outcome, observer) -> None:
        """Rank-based runs have no post-record side effects."""

    def recover(self, iteration: int, observer: RunObserver) -> int:
        """MPI ranks keep no checkpoints: recovery is a from-scratch
        rerun over the same sharding."""
        self.sharded.reset()
        return 0
