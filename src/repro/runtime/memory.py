"""Memory-layout registration and per-row state accounting (Table 1).

The three k-means execution modes allocate the same logical objects --
row data (in-memory modes only), assignments, global + per-thread
centroid copies, pruning bounds, SEM caches -- with mode-specific NUMA
placement policies. This module owns those layouts so the drivers stay
parameter-translation shims, and owns the *per-row state traffic*
constant the task builder charges alongside row data:

* unpruned: the 4-byte assignment slot;
* MTI: assignment + the 8-byte upper bound (12 B/row);
* Elkan: assignment + upper bound + the k-wide lower-bound row
  (``(k + 1) * 8 + 4`` B/row) -- the O(nk) bound matrix is real state
  the iteration touches, so charging Elkan the MTI rate (as the seed
  drivers did) underestimates its memory traffic.
"""

from __future__ import annotations

from repro.simhw import AllocPolicy, BindPolicy, SimMachine

_F64 = 8
_I32 = 4


def state_bytes_per_row(pruning: str | None, k: int) -> int:
    """Bytes of algorithm state touched per active row, by mode."""
    if pruning is None:
        return _I32
    if pruning == "mti":
        return _F64 + _I32
    if pruning == "elkan":
        return (k + 1) * _F64 + _I32
    raise ValueError(f"unknown pruning mode {pruning!r}")


def _alloc_centroids(machine: SimMachine, k: int, d: int) -> None:
    """Global centroids + per-thread private copies (every mode)."""
    machine.memory.alloc(
        "global_centroids",
        k * d * _F64,
        AllocPolicy.INTERLEAVE,
        component="centroids",
    )
    for th in machine.threads:
        machine.memory.alloc(
            f"thread{th.thread_id}_centroids",
            k * d * _F64 + k * _F64,
            AllocPolicy.NUMA_BIND,
            component="per_thread_centroids",
            home_node=th.node,
        )


def _alloc_pruning_bounds(
    machine: SimMachine,
    n: int,
    k: int,
    pruning: str | None,
    data_policy: AllocPolicy,
) -> None:
    """Mode-specific bound structures (Table 1's extra columns)."""
    mem = machine.memory
    if pruning == "mti":
        mem.alloc(
            "mti_upper_bounds", n * _F64, data_policy,
            component="mti_bounds",
        )
        mem.alloc(
            "centroid_dist_matrix",
            (k * (k + 1) // 2) * _F64,
            AllocPolicy.INTERLEAVE,
            component="mti_bounds",
        )
    elif pruning == "elkan":
        mem.alloc(
            "elkan_upper_bounds", n * _F64, data_policy,
            component="ti_bounds",
        )
        mem.alloc(
            "elkan_lower_bounds", n * k * _F64, data_policy,
            component="ti_lower_bound_matrix",
        )
        mem.alloc(
            "centroid_dist_matrix",
            (k * (k + 1) // 2) * _F64,
            AllocPolicy.INTERLEAVE,
            component="ti_bounds",
        )


def register_mm_memory(
    machine: SimMachine,
    n: int,
    d: int,
    *,
    state_bytes_per_row: int,
    model_slots: int,
    resident_rows: bool = True,
    row_cache_bytes: int = 0,
    page_cache_bytes: int = 0,
) -> None:
    """Generic MM algorithm layout: row data (unless semi-external),
    O(n) per-row algorithm state, and the global + per-thread model
    copies (``model_slots`` d-length f64 vectors, the same funnel
    width the reduction is priced with)."""
    mem = machine.memory
    data_policy = (
        AllocPolicy.OBLIVIOUS
        if machine.bind_policy is BindPolicy.OBLIVIOUS
        else AllocPolicy.PARTITIONED
    )
    if resident_rows:
        mem.alloc(
            "row_data", n * d * _F64, data_policy, component="data"
        )
    mem.alloc(
        "mm_row_state", n * state_bytes_per_row, data_policy,
        component="mm_state",
    )
    mem.alloc(
        "global_model", model_slots * d * _F64,
        AllocPolicy.INTERLEAVE, component="model",
    )
    for th in machine.threads:
        mem.alloc(
            f"thread{th.thread_id}_model",
            model_slots * d * _F64,
            AllocPolicy.NUMA_BIND,
            component="per_thread_model",
            home_node=th.node,
        )
    if row_cache_bytes > 0:
        mem.alloc(
            "row_cache", row_cache_bytes, AllocPolicy.PARTITIONED,
            component="row_cache",
        )
    if page_cache_bytes > 0:
        mem.alloc(
            "page_cache", page_cache_bytes, AllocPolicy.INTERLEAVE,
            component="page_cache",
        )


def register_inmemory_memory(
    machine: SimMachine, n: int, d: int, k: int, pruning: str | None
) -> None:
    """knori's allocations: O(nd) row data resident in RAM."""
    data_policy = (
        AllocPolicy.OBLIVIOUS
        if machine.bind_policy is BindPolicy.OBLIVIOUS
        else AllocPolicy.PARTITIONED
    )
    machine.memory.alloc(
        "row_data", n * d * _F64, data_policy, component="data"
    )
    machine.memory.alloc(
        "assignment", n * _I32, data_policy, component="assignment"
    )
    _alloc_centroids(machine, k, d)
    _alloc_pruning_bounds(machine, n, k, pruning, data_policy)


def register_sem_memory(
    machine: SimMachine,
    n: int,
    d: int,
    k: int,
    pruning: str | None,
    *,
    row_cache_bytes: int,
    page_cache_bytes: int,
) -> None:
    """knors' allocations: NO O(nd) row data -- only O(n) state plus
    the two caches (the semi-external argument in one layout)."""
    mem = machine.memory
    mem.alloc(
        "assignment", n * _I32, AllocPolicy.PARTITIONED,
        component="assignment",
    )
    _alloc_centroids(machine, k, d)
    if pruning == "mti":
        _alloc_pruning_bounds(
            machine, n, k, "mti", AllocPolicy.PARTITIONED
        )
    if row_cache_bytes > 0:
        mem.alloc(
            "row_cache", row_cache_bytes, AllocPolicy.PARTITIONED,
            component="row_cache",
        )
    mem.alloc(
        "page_cache", page_cache_bytes, AllocPolicy.INTERLEAVE,
        component="page_cache",
    )


def register_distributed_memory(
    machines: list[SimMachine],
    shard_rows: list[int],
    d: int,
    k: int,
    pruning: str | None,
) -> None:
    """knord's allocations: every machine holds its own shard."""
    for machine, shard_n in zip(machines, shard_rows):
        data_policy = (
            AllocPolicy.OBLIVIOUS
            if machine.bind_policy is BindPolicy.OBLIVIOUS
            else AllocPolicy.PARTITIONED
        )
        machine.memory.alloc(
            "row_data", shard_n * d * _F64, data_policy, component="data"
        )
        machine.memory.alloc(
            "assignment", shard_n * _I32, data_policy,
            component="assignment",
        )
        _alloc_centroids(machine, k, d)
        if pruning == "mti":
            _alloc_pruning_bounds(
                machine, shard_n, k, "mti", data_policy
            )
