"""repro.runtime: the unified execution layer under every driver.

The paper's three engines -- in-memory (Section 5), semi-external
(Section 6) and distributed (Section 7) -- share one iteration
skeleton: exact numerics, row-block task construction, scheduler and
engine replay, barrier + reduction, per-iteration accounting. This
package factors that skeleton out once:

* **sources** (:class:`KmeansSource`, :class:`RowAlgorithmSource`)
  produce per-iteration exact work statistics;
* **backends** (:class:`InMemoryBackend`, :class:`SemBackend`,
  :class:`DistributedBackend`, :class:`PureMpiBackend`) price them on
  a substrate and emit :class:`~repro.metrics.IterationRecord`\\s;
* the :class:`IterationLoop` orchestrates any backend to convergence
  and assembles results uniformly;
* :class:`RunObserver` hooks expose the full trace-event stream to
  benchmarks, the CLI, and profilers.

``knori()``, ``knors()``, ``knord()``, the generalized framework's
``run_numa``/``run_sem``, and ``baselines.mpi_lloyd`` are thin
parameter-translation shims over these pieces.

On top of the skeleton sits the **MM algorithm plane**
(:mod:`repro.runtime.mm`): any algorithm expressible as a per-row
*majorize* phase plus a global additive *minimize* reduction
(:class:`MMAlgorithm`) inherits all three backends, fault recovery,
v4 checkpoints and the observer bus via ``run_mm_inmemory`` /
``run_mm_sem`` / ``run_mm_distributed``. k-means itself is the first
implementation (:class:`KmeansMM`); the extension zoo supplies the
rest (see :mod:`repro.extensions`).
"""

from repro.runtime.backends import (
    CheckpointHook,
    DistributedBackend,
    ExecutionBackend,
    InMemoryBackend,
    IterationOutcome,
    PureMpiBackend,
    SemBackend,
    ShardedKmeans,
    ShardedProgram,
)
from repro.runtime.loop import IterationLoop, LoopResult
from repro.runtime.mm import (
    KmeansMM,
    MMAlgorithm,
    MMCheckpointHook,
    MMShardedProgram,
    MMSource,
    MMStep,
    run_mm,
    run_mm_distributed,
    run_mm_inmemory,
    run_mm_sem,
)
from repro.runtime.memory import (
    register_distributed_memory,
    register_inmemory_memory,
    register_mm_memory,
    register_sem_memory,
    state_bytes_per_row,
)
from repro.runtime.observer import (
    ObserverChain,
    PrintObserver,
    RecordingObserver,
    RunObserver,
    TraceEvent,
    chain_observers,
)
from repro.runtime.sources import (
    KmeansSource,
    NumericsSource,
    RowAlgorithmSource,
    StepStats,
    resolve_row_data,
)

__all__ = [
    "CheckpointHook",
    "DistributedBackend",
    "ExecutionBackend",
    "InMemoryBackend",
    "IterationLoop",
    "IterationOutcome",
    "KmeansMM",
    "KmeansSource",
    "LoopResult",
    "MMAlgorithm",
    "MMCheckpointHook",
    "MMShardedProgram",
    "MMSource",
    "MMStep",
    "NumericsSource",
    "ObserverChain",
    "PrintObserver",
    "PureMpiBackend",
    "RecordingObserver",
    "RowAlgorithmSource",
    "RunObserver",
    "SemBackend",
    "ShardedKmeans",
    "ShardedProgram",
    "StepStats",
    "TraceEvent",
    "chain_observers",
    "register_distributed_memory",
    "register_inmemory_memory",
    "register_mm_memory",
    "register_sem_memory",
    "resolve_row_data",
    "run_mm",
    "run_mm_distributed",
    "run_mm_inmemory",
    "run_mm_sem",
    "state_bytes_per_row",
]
